#include "graph/graph.hpp"

#include <unordered_set>

#include "common/error.hpp"

namespace convmeter {

Graph::Graph(std::string name) : name_(std::move(name)) {}

const Node& Graph::node(NodeId id) const {
  CM_CHECK(id >= 0 && static_cast<std::size_t>(id) < nodes_.size(),
           "node id out of range in graph '" + name_ + "'");
  return nodes_[static_cast<std::size_t>(id)];
}

NodeId Graph::input_id() const {
  CM_CHECK(!nodes_.empty() && nodes_.front().kind == OpKind::kInput,
           "graph '" + name_ + "' has no input node");
  return 0;
}

NodeId Graph::output_id() const {
  std::vector<bool> consumed(nodes_.size(), false);
  for (const auto& n : nodes_) {
    for (const NodeId in : n.inputs) consumed[static_cast<std::size_t>(in)] = true;
  }
  NodeId sink = -1;
  for (const auto& n : nodes_) {
    if (!consumed[static_cast<std::size_t>(n.id)]) {
      CM_CHECK(sink == -1, "graph '" + name_ + "' has multiple sinks");
      sink = n.id;
    }
  }
  CM_CHECK(sink != -1, "graph '" + name_ + "' has no sink");
  return sink;
}

NodeId Graph::push(std::string name, OpKind kind, OpAttrs attrs,
                   std::vector<NodeId> inputs) {
  check_input_ids(inputs);
  Node n;
  n.id = static_cast<NodeId>(nodes_.size());
  n.name = std::move(name);
  n.kind = kind;
  n.attrs = std::move(attrs);
  n.inputs = std::move(inputs);
  nodes_.push_back(std::move(n));
  return nodes_.back().id;
}

void Graph::check_input_ids(const std::vector<NodeId>& inputs) const {
  for (const NodeId in : inputs) {
    CM_CHECK(in >= 0 && static_cast<std::size_t>(in) < nodes_.size(),
             "node input id refers to a node that does not exist yet");
  }
}

NodeId Graph::input(std::int64_t channels) {
  CM_CHECK(nodes_.empty(), "input node must be the first node in the graph");
  CM_CHECK(channels > 0, "input channels must be positive");
  input_channels_ = channels;
  return push("input", OpKind::kInput, InputAttrs{}, {});
}

NodeId Graph::conv2d(std::string name, NodeId in, const Conv2dAttrs& attrs) {
  CM_CHECK(attrs.in_channels > 0 && attrs.out_channels > 0,
           "conv2d channels must be positive");
  CM_CHECK(attrs.groups > 0 && attrs.in_channels % attrs.groups == 0 &&
               attrs.out_channels % attrs.groups == 0,
           "conv2d groups must divide both channel counts");
  CM_CHECK(attrs.kernel_h > 0 && attrs.kernel_w > 0 && attrs.stride_h > 0 &&
               attrs.stride_w > 0 && attrs.dilation_h > 0 &&
               attrs.dilation_w > 0,
           "conv2d kernel/stride/dilation must be positive");
  return push(std::move(name), OpKind::kConv2d, attrs, {in});
}

NodeId Graph::batch_norm(std::string name, NodeId in, std::int64_t channels) {
  CM_CHECK(channels > 0, "batch_norm channels must be positive");
  return push(std::move(name), OpKind::kBatchNorm2d,
              BatchNorm2dAttrs{channels}, {in});
}

NodeId Graph::activation(std::string name, NodeId in, ActKind kind) {
  return push(std::move(name), OpKind::kActivation, ActivationAttrs{kind},
              {in});
}

NodeId Graph::max_pool(std::string name, NodeId in, const Pool2dAttrs& attrs) {
  return push(std::move(name), OpKind::kMaxPool2d, attrs, {in});
}

NodeId Graph::avg_pool(std::string name, NodeId in, const Pool2dAttrs& attrs) {
  return push(std::move(name), OpKind::kAvgPool2d, attrs, {in});
}

NodeId Graph::adaptive_avg_pool(std::string name, NodeId in, std::int64_t out_h,
                                std::int64_t out_w) {
  CM_CHECK(out_h > 0 && out_w > 0, "adaptive pool output size must be positive");
  return push(std::move(name), OpKind::kAdaptiveAvgPool2d,
              AdaptiveAvgPool2dAttrs{out_h, out_w}, {in});
}

NodeId Graph::linear(std::string name, NodeId in, const LinearAttrs& attrs) {
  CM_CHECK(attrs.in_features > 0 && attrs.out_features > 0,
           "linear feature counts must be positive");
  return push(std::move(name), OpKind::kLinear, attrs, {in});
}

NodeId Graph::flatten(std::string name, NodeId in) {
  return push(std::move(name), OpKind::kFlatten, FlattenAttrs{}, {in});
}

NodeId Graph::add(std::string name, NodeId a, NodeId b) {
  return push(std::move(name), OpKind::kAdd, AddAttrs{}, {a, b});
}

NodeId Graph::multiply(std::string name, NodeId a, NodeId b) {
  return push(std::move(name), OpKind::kMultiply, MultiplyAttrs{}, {a, b});
}

NodeId Graph::concat(std::string name, std::vector<NodeId> inputs) {
  CM_CHECK(inputs.size() >= 2, "concat requires at least two inputs");
  return push(std::move(name), OpKind::kConcat, ConcatAttrs{},
              std::move(inputs));
}

NodeId Graph::dropout(std::string name, NodeId in, double p) {
  CM_CHECK(p >= 0.0 && p < 1.0, "dropout probability must be in [0, 1)");
  return push(std::move(name), OpKind::kDropout, DropoutAttrs{p}, {in});
}

NodeId Graph::to_tokens(std::string name, NodeId in, bool cls_token) {
  return push(std::move(name), OpKind::kToTokens, ToTokensAttrs{cls_token},
              {in});
}

NodeId Graph::layer_norm(std::string name, NodeId in, std::int64_t dim) {
  CM_CHECK(dim > 0, "layer_norm dim must be positive");
  return push(std::move(name), OpKind::kLayerNorm, LayerNormAttrs{dim}, {in});
}

NodeId Graph::self_attention(std::string name, NodeId in,
                             std::int64_t embed_dim, std::int64_t num_heads) {
  CM_CHECK(embed_dim > 0 && num_heads > 0 && embed_dim % num_heads == 0,
           "self_attention heads must divide the embedding dim");
  return push(std::move(name), OpKind::kSelfAttention,
              SelfAttentionAttrs{embed_dim, num_heads}, {in});
}

NodeId Graph::select_token(std::string name, NodeId in, std::int64_t index) {
  CM_CHECK(index >= 0, "select_token index must be non-negative");
  return push(std::move(name), OpKind::kSelectToken, SelectTokenAttrs{index},
              {in});
}

NodeId Graph::transpose_tokens(std::string name, NodeId in) {
  return push(std::move(name), OpKind::kTransposeTokens,
              TransposeTokensAttrs{}, {in});
}

NodeId Graph::slice_channels(std::string name, NodeId in, std::int64_t begin,
                             std::int64_t end) {
  CM_CHECK(begin >= 0 && end > begin, "slice_channels needs 0 <= begin < end");
  return push(std::move(name), OpKind::kSliceChannels,
              SliceChannelsAttrs{begin, end}, {in});
}

NodeId Graph::channel_shuffle(std::string name, NodeId in,
                              std::int64_t groups) {
  CM_CHECK(groups >= 1, "channel_shuffle groups must be >= 1");
  return push(std::move(name), OpKind::kChannelShuffle,
              ChannelShuffleAttrs{groups}, {in});
}

Graph Graph::unchecked(std::string name, std::int64_t input_channels,
                       std::vector<Node> nodes) {
  Graph g(std::move(name));
  g.input_channels_ = input_channels;
  g.nodes_ = std::move(nodes);
  for (std::size_t i = 0; i < g.nodes_.size(); ++i) {
    g.nodes_[i].id = static_cast<NodeId>(i);
  }
  return g;
}

NodeId Graph::add_node(std::string name, OpKind kind, OpAttrs attrs,
                       std::vector<NodeId> inputs) {
  if (kind == OpKind::kInput) {
    CM_CHECK(nodes_.empty(), "input node must be the first node");
    const auto* in = std::get_if<InputAttrs>(&attrs);
    CM_CHECK(in != nullptr, "input node requires InputAttrs");
  }
  return push(std::move(name), kind, std::move(attrs), std::move(inputs));
}

namespace {

std::size_t expected_min_arity(OpKind kind) {
  switch (kind) {
    case OpKind::kInput: return 0;
    case OpKind::kAdd:
    case OpKind::kMultiply:
    case OpKind::kConcat: return 2;
    case OpKind::kConv2d:
    case OpKind::kBatchNorm2d:
    case OpKind::kActivation:
    case OpKind::kMaxPool2d:
    case OpKind::kAvgPool2d:
    case OpKind::kAdaptiveAvgPool2d:
    case OpKind::kLinear:
    case OpKind::kFlatten:
    case OpKind::kDropout:
    case OpKind::kToTokens:
    case OpKind::kLayerNorm:
    case OpKind::kSelfAttention:
    case OpKind::kSelectToken:
    case OpKind::kTransposeTokens:
    case OpKind::kSliceChannels:
    case OpKind::kChannelShuffle: return 1;
  }
  throw InvalidArgument("unknown OpKind in expected_min_arity");
}

std::size_t expected_max_arity(OpKind kind) {
  switch (kind) {
    case OpKind::kInput: return 0;
    case OpKind::kAdd:
    case OpKind::kMultiply: return 2;
    case OpKind::kConcat: return SIZE_MAX;
    case OpKind::kConv2d:
    case OpKind::kBatchNorm2d:
    case OpKind::kActivation:
    case OpKind::kMaxPool2d:
    case OpKind::kAvgPool2d:
    case OpKind::kAdaptiveAvgPool2d:
    case OpKind::kLinear:
    case OpKind::kFlatten:
    case OpKind::kDropout:
    case OpKind::kToTokens:
    case OpKind::kLayerNorm:
    case OpKind::kSelfAttention:
    case OpKind::kSelectToken:
    case OpKind::kTransposeTokens:
    case OpKind::kSliceChannels:
    case OpKind::kChannelShuffle: return 1;
  }
  throw InvalidArgument("unknown OpKind in expected_max_arity");
}

}  // namespace

void Graph::validate() const {
  CM_CHECK(!nodes_.empty(), "graph '" + name_ + "' is empty");
  CM_CHECK(nodes_.front().kind == OpKind::kInput,
           "first node must be the graph input");
  std::unordered_set<std::string> names;
  for (const auto& n : nodes_) {
    CM_CHECK(names.insert(n.name).second,
             "duplicate node name '" + n.name + "' in graph '" + name_ + "'");
    if (n.id != 0) {
      CM_CHECK(n.kind != OpKind::kInput,
               "graph '" + name_ + "' has more than one input node");
    }
    CM_CHECK(n.inputs.size() >= expected_min_arity(n.kind) &&
                 n.inputs.size() <= expected_max_arity(n.kind),
             "node '" + n.name + "' has wrong arity");
    for (const NodeId in : n.inputs) {
      CM_CHECK(in >= 0 && in < n.id,
               "node '" + n.name + "' consumes a node that does not precede it");
    }
  }
  (void)output_id();  // single-sink check
}

std::size_t Graph::count_kind(OpKind kind) const {
  std::size_t n = 0;
  for (const auto& node : nodes_) {
    if (node.kind == kind) ++n;
  }
  return n;
}

std::vector<NodeId> Graph::nodes_of_kind(OpKind kind) const {
  std::vector<NodeId> out;
  for (const auto& node : nodes_) {
    if (node.kind == kind) out.push_back(node.id);
  }
  return out;
}

NodeId Graph::find(const std::string& name) const {
  for (const auto& node : nodes_) {
    if (node.name == name) return node.id;
  }
  throw InvalidArgument("no node named '" + name + "' in graph '" + name_ +
                        "'");
}

std::int64_t Graph::parameter_count() const {
  std::int64_t total = 0;
  for (const auto& n : nodes_) {
    switch (n.kind) {
      case OpKind::kConv2d:
        total += n.as<Conv2dAttrs>().parameter_count();
        break;
      case OpKind::kLinear:
        total += n.as<LinearAttrs>().parameter_count();
        break;
      case OpKind::kBatchNorm2d:
        // Affine scale and shift per channel.
        total += 2 * n.as<BatchNorm2dAttrs>().channels;
        break;
      case OpKind::kLayerNorm:
        total += 2 * n.as<LayerNormAttrs>().dim;
        break;
      case OpKind::kSelfAttention:
        total += n.as<SelfAttentionAttrs>().parameter_count();
        break;
      case OpKind::kToTokens:
        // The learnable cls token (dim floats) is excluded here to keep the
        // historical counts (and the ViT goldens, which also skip the
        // position embedding) stable.
      case OpKind::kInput:
      case OpKind::kActivation:
      case OpKind::kMaxPool2d:
      case OpKind::kAvgPool2d:
      case OpKind::kAdaptiveAvgPool2d:
      case OpKind::kFlatten:
      case OpKind::kAdd:
      case OpKind::kMultiply:
      case OpKind::kConcat:
      case OpKind::kDropout:
      case OpKind::kSelectToken:
      case OpKind::kTransposeTokens:
      case OpKind::kSliceChannels:
      case OpKind::kChannelShuffle:
        break;
    }
  }
  return total;
}

}  // namespace convmeter
