#include "sim/comm.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace convmeter {

double CommFabric::ring_allreduce_time(double bytes, int num_devices,
                                       int num_nodes) const {
  CM_CHECK(bytes >= 0.0, "allreduce bytes must be non-negative");
  CM_CHECK(num_devices >= 1 && num_nodes >= 1 && num_devices % num_nodes == 0,
           "devices must divide evenly across nodes");
  if (num_devices == 1) return 0.0;

  const double n = static_cast<double>(num_devices);
  if (num_nodes == 1) {
    // Intra-node NVLink ring: 2(n-1) steps of bytes/n each.
    return per_tensor_overhead +
           2.0 * (n - 1.0) / n * bytes / nvlink_bandwidth +
           2.0 * (n - 1.0) * nvlink_latency;
  }

  const double m = static_cast<double>(num_nodes);
  const double local = n / m;  // devices per node

  // Phase 1+3: intra-node reduce-scatter and broadcast over NVLink.
  double intra = 0.0;
  if (local > 1.0) {
    intra = 2.0 * ((local - 1.0) / local * bytes / nvlink_bandwidth +
                   (local - 1.0) * nvlink_latency);
  }
  // Phase 2: inter-node rings over InfiniBand. After the intra-node
  // reduce-scatter each GPU holds a bytes/local shard and rings it with its
  // peers across nodes, but all `local` rings share the node's aggregate
  // InfiniBand bandwidth — so the full buffer crosses the node link.
  const double inter = 2.0 * (m - 1.0) / m * bytes / ib_bandwidth +
                       2.0 * (m - 1.0) * ib_latency;
  return per_tensor_overhead + intra + inter;
}

CommFabric nvlink_hdr200_fabric() {
  CommFabric f;
  f.name = "nvlink3+4xHDR200";
  f.nvlink_bandwidth = 250e9;   // effective NVLink3 all-reduce bandwidth
  f.nvlink_latency = 4e-6;
  // Four HDR-200 cards = 100 GB/s per node raw; ~70% achievable.
  f.ib_bandwidth = 70e9;
  f.ib_latency = 12e-6;
  f.per_tensor_overhead = 25e-6;  // Horovod coordination per fused tensor
  f.noise_sigma = 0.18;
  return f;
}

}  // namespace convmeter
