#include "sim/inference_sim.hpp"

#include "sim/cost_model.hpp"

namespace convmeter {

InferenceSimulator::InferenceSimulator(DeviceSpec device)
    : device_(std::move(device)) {}

double InferenceSimulator::expected(const Graph& graph,
                                    const Shape& input_shape) const {
  return forward_time(device_, graph, input_shape);
}

double InferenceSimulator::measure(const Graph& graph,
                                   const Shape& input_shape, Rng& rng) const {
  return expected(graph, input_shape) *
         rng.lognormal_factor(device_.noise_sigma);
}

}  // namespace convmeter
