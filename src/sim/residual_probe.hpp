// Bridges cost-model predictions and per-layer measurements into the
// observability registry.
//
// The executor (or any other measurement source) reports what each node
// *actually* took; this probe re-derives what the roofline cost model
// *predicted* for the same node on a given device and records the
// (predicted, measured) pair per op-type via obs::record_prediction_residual,
// so prediction drift is visible as "residual.rel_err.<op>" histograms.
#pragma once

#include <span>
#include <vector>

#include "graph/graph.hpp"
#include "obs/metrics_registry.hpp"
#include "sim/device.hpp"
#include "tensor/shape.hpp"

namespace convmeter {

/// Measured wall-clock time of one graph node. Layout-compatible with the
/// executor's LayerTiming but declared here so cm_sim does not depend on
/// cm_exec.
struct MeasuredLayerTime {
  NodeId node = -1;
  double seconds = 0.0;
};

/// Records one residual pair per measured node into `registry`, keyed by
/// the node's op-kind name, plus a whole-graph pair under "graph". Returns
/// the number of pairs recorded. Nodes absent from `measured` (and the
/// input pseudo-node) are skipped.
std::size_t record_layer_residuals(obs::MetricsRegistry& registry,
                                   const DeviceSpec& device, const Graph& graph,
                                   const Shape& input_shape,
                                   std::span<const MeasuredLayerTime> measured);

/// Same, against the process-wide registry.
std::size_t record_layer_residuals(const DeviceSpec& device, const Graph& graph,
                                   const Shape& input_shape,
                                   std::span<const MeasuredLayerTime> measured);

}  // namespace convmeter
