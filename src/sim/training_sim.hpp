// Event-driven simulation of one data-parallel synchronous training step
// (Fig. 1 of the paper): forward pass, backward pass, and gradient update
// with Horovod-style tensor fusion overlapping ring-all-reduce with the
// backward computation.
#pragma once

#include "common/rng.hpp"
#include "graph/graph.hpp"
#include "sim/comm.hpp"
#include "sim/device.hpp"
#include "tensor/shape.hpp"

namespace convmeter {

/// Training-run configuration.
struct TrainConfig {
  int num_devices = 1;  ///< total GPUs (N in the paper)
  int num_nodes = 1;    ///< physical nodes; devices spread evenly
  /// Horovod tensor-fusion threshold: gradients are batched into buckets
  /// of at most this many bytes before each all-reduce.
  double fusion_threshold_bytes = 64.0 * (1 << 20);
  /// Adam optimizer state/arithmetic is assumed (the paper trains with
  /// Adam); flops and bytes per parameter for the update step.
  double opt_flops_per_param = 4.0;
  double opt_bytes_per_param = 12.0;
  /// Python-side dispatch cost per parameter tensor: Horovod wraps a
  /// non-fused Adam, so each layer's update is a handful of small kernels
  /// launched from the training loop. This is what makes the measured
  /// T_grad scale with the layer count L (Sec. 3.3).
  double opt_overhead_per_layer = 12e-6;
};

/// Durations of the phases of one training step, in seconds.
/// step == fwd + bwd + grad, where `grad` is the *exposed* gradient-update
/// time: optimizer step plus whatever all-reduce time the backward pass
/// could not hide (the two phases overlap, Sec. 3.3).
struct TrainStepTimes {
  double fwd = 0.0;
  double bwd = 0.0;
  double grad = 0.0;
  double step = 0.0;
};

/// Simulates synchronous data-parallel training steps.
class TrainingSimulator {
 public:
  TrainingSimulator(DeviceSpec device, CommFabric fabric);

  const DeviceSpec& device() const { return device_; }
  const CommFabric& fabric() const { return fabric_; }

  /// Noise-free expected phase times for one step. `per_device_shape` is
  /// the mini-batch processed by each device (batch dimension = B/N).
  TrainStepTimes expected_step(const Graph& graph,
                               const Shape& per_device_shape,
                               const TrainConfig& config) const;

  /// One simulated measurement with phase-level jitter. Communication
  /// jitter uses the fabric's (larger) sigma, reproducing the higher
  /// variance the paper reports for distributed configurations.
  TrainStepTimes measure_step(const Graph& graph,
                              const Shape& per_device_shape,
                              const TrainConfig& config, Rng& rng) const;

 private:
  DeviceSpec device_;
  CommFabric fabric_;
};

}  // namespace convmeter
