#include "sim/device.hpp"

#include "common/error.hpp"

namespace convmeter {

double DeviceSpec::effective_flops(double work) const {
  CM_CHECK(work >= 0.0, "work must be non-negative");
  const double eff =
      max_efficiency * work / (work + saturation_flops);
  return peak_flops * eff;
}

double DeviceSpec::effective_flops(double work, OpFamily family) const {
  const double factor = family_efficiency[static_cast<std::size_t>(family)];
  CM_CHECK(factor > 0.0, "family_efficiency entries must be positive");
  return effective_flops(work) * factor;
}

double DeviceSpec::effective_bandwidth(double bytes) const {
  CM_CHECK(bytes >= 0.0, "bytes must be non-negative");
  const double eff =
      max_efficiency * bytes / (bytes + saturation_bytes);
  return mem_bandwidth * eff;
}

DeviceSpec xeon_gold_5318y_core() {
  DeviceSpec d;
  d.name = "xeon_5318y";
  // 2.1 GHz x 2 FMA ports x 16 fp32 lanes = 67.2 GFLOP/s theoretical.
  d.peak_flops = 67.2e9;
  // Single-core share of the 8-channel DDR4-2933 system.
  d.mem_bandwidth = 18e9;
  d.max_efficiency = 0.55;       // well-blocked oneDNN convolutions
  d.saturation_flops = 2e6;      // a core saturates on small kernels quickly
  d.saturation_bytes = 0.3e6;
  d.launch_overhead = 8e-6;      // framework op dispatch
  d.memory_bytes = 256.0 * (1ull << 30);
  d.noise_sigma = 0.10;
  // conv, gemm, attention, norm, elementwise — calibrated against this
  // repo's real CPU executor on vit_s_16 (tests/sim_test.cpp pins the
  // resulting per-family rank ordering). Linear layers pay their fused
  // activation epilogue (GELU on transformer MLPs) inside the GEMM
  // writeback, so the gemm family lands below conv; attention's big
  // batched projections slightly beat im2col conv; norm kernels crawl at
  // memory speed.
  d.family_efficiency = {1.0, 0.70, 1.05, 0.35, 0.30};
  return d;
}

DeviceSpec a100_80gb() {
  DeviceSpec d;
  d.name = "a100";
  // TF32 tensor cores peak at 156 TFLOP/s; dense convs reach about half.
  d.peak_flops = 156e12;
  d.mem_bandwidth = 2.0e12;      // HBM2e
  d.max_efficiency = 0.45;
  d.saturation_flops = 1e8;      // needs a large kernel to fill 108 SMs
  d.saturation_bytes = 4e6;
  d.launch_overhead = 2.5e-6;    // kernel launch + framework dispatch
  d.memory_bytes = 80.0 * (1ull << 30);
  d.noise_sigma = 0.06;
  // Tensor cores widen the gap: attention's non-GEMM work and the
  // bandwidth-bound families run on the much slower CUDA-core/HBM path.
  d.family_efficiency = {1.0, 1.1, 0.45, 0.25, 0.20};
  return d;
}

DeviceSpec jetson_class_edge() {
  DeviceSpec d;
  d.name = "jetson_edge";
  // Xavier-NX-class: ~6 TFLOP/s fp16 tensor peak, shared LPDDR4x memory.
  d.peak_flops = 6e12;
  d.mem_bandwidth = 59.7e9;
  d.max_efficiency = 0.5;
  d.saturation_flops = 5e7;
  d.saturation_bytes = 2e6;
  d.launch_overhead = 12e-6;     // weaker host CPU drives dispatch
  d.memory_bytes = 8.0 * (1ull << 30);
  d.noise_sigma = 0.12;          // DVFS/thermal jitter
  d.family_efficiency = {1.0, 1.05, 0.50, 0.30, 0.25};
  return d;
}

DeviceSpec device_by_name(const std::string& name) {
  if (name == "xeon_5318y") return xeon_gold_5318y_core();
  if (name == "a100") return a100_80gb();
  if (name == "jetson_edge") return jetson_class_edge();
  throw InvalidArgument("unknown device preset: " + name);
}

}  // namespace convmeter
