#include "sim/training_sim.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "metrics/metrics.hpp"
#include "sim/cost_model.hpp"

namespace convmeter {

namespace {

/// The forward pass of a training step also materializes activations for
/// the backward pass, which costs extra bandwidth compared to inference.
constexpr double kActivationSaveFactor = 1.15;

/// Backward kernels roughly double the forward work: one pass for the
/// gradient w.r.t. the input and one for the gradient w.r.t. the weights.
constexpr double kBackwardWorkFactor = 2.0;

constexpr double kBytesPerElem = 4.0;

}  // namespace

TrainingSimulator::TrainingSimulator(DeviceSpec device, CommFabric fabric)
    : device_(std::move(device)), fabric_(std::move(fabric)) {}

TrainStepTimes TrainingSimulator::expected_step(
    const Graph& graph, const Shape& per_device_shape,
    const TrainConfig& config) const {
  CM_CHECK(config.num_devices >= 1 && config.num_nodes >= 1 &&
               config.num_devices % config.num_nodes == 0,
           "devices must divide evenly across nodes");
  const auto work = per_layer_work(graph, per_device_shape);

  TrainStepTimes t;

  // ---- forward pass ------------------------------------------------------
  for (const LayerWork& w : work) {
    t.fwd += kernel_time(device_, w) * kActivationSaveFactor;
  }

  // ---- backward pass with overlapped gradient all-reduce -----------------
  // Kernels run in reverse topological order. As each parameterized layer
  // finishes, its gradient joins the fusion buffer; full buckets are handed
  // to the communication "stream", which processes all-reduces in order.
  double compute_clock = 0.0;
  double comm_clock = 0.0;
  double bucket_bytes = 0.0;

  const auto flush_bucket = [&](double ready_at) {
    if (bucket_bytes <= 0.0 || config.num_devices == 1) {
      bucket_bytes = 0.0;
      return;
    }
    const double start = std::max(comm_clock, ready_at);
    comm_clock = start + fabric_.ring_allreduce_time(
                             bucket_bytes, config.num_devices,
                             config.num_nodes);
    bucket_bytes = 0.0;
  };

  for (auto it = work.rbegin(); it != work.rend(); ++it) {
    LayerWork bwd = *it;
    bwd.flops *= kBackwardWorkFactor;
    bwd.input_elems *= kBackwardWorkFactor;
    bwd.output_elems *= kBackwardWorkFactor;
    compute_clock += kernel_time(device_, bwd);
    if (bwd.param_elems > 0.0) {
      bucket_bytes += bwd.param_elems * kBytesPerElem;
      if (bucket_bytes >= config.fusion_threshold_bytes) {
        flush_bucket(compute_clock);
      }
    }
  }
  flush_bucket(compute_clock);
  t.bwd = compute_clock;

  // ---- gradient update ----------------------------------------------------
  // Exposed communication: the tail of the last all-reduce that the
  // backward pass could not hide.
  const double exposed_comm = std::max(0.0, comm_clock - compute_clock);

  // Optimizer step: frameworks launch one update kernel per parameterized
  // layer, so the cost scales with the layer count L (the c1*L term of the
  // paper's T_grad model) plus a weight-volume component.
  double opt_time = 0.0;
  for (const LayerWork& w : work) {
    if (w.param_elems <= 0.0) continue;
    LayerWork upd;
    upd.flops = w.param_elems * config.opt_flops_per_param;
    upd.input_elems = w.param_elems * config.opt_bytes_per_param /
                      (2.0 * kBytesPerElem);
    upd.output_elems = upd.input_elems;
    opt_time += kernel_time(device_, upd) + config.opt_overhead_per_layer;
  }

  t.grad = exposed_comm + opt_time;
  t.step = t.fwd + t.bwd + t.grad;
  return t;
}

TrainStepTimes TrainingSimulator::measure_step(const Graph& graph,
                                               const Shape& per_device_shape,
                                               const TrainConfig& config,
                                               Rng& rng) const {
  TrainStepTimes t = expected_step(graph, per_device_shape, config);

  // Distributed runs show extra variance even in the compute phases:
  // devices do not restart in lockstep after a synchronization (Sec. 4.2.1).
  const double straggler_sigma =
      config.num_devices > 1 ? 0.5 * fabric_.noise_sigma : 0.0;
  const double compute_sigma = device_.noise_sigma + straggler_sigma;

  t.fwd *= rng.lognormal_factor(compute_sigma);
  t.bwd *= rng.lognormal_factor(compute_sigma);
  const double grad_sigma = config.num_devices > 1
                                ? device_.noise_sigma + fabric_.noise_sigma
                                : device_.noise_sigma;
  t.grad *= rng.lognormal_factor(grad_sigma);
  t.step = t.fwd + t.bwd + t.grad;
  return t;
}

}  // namespace convmeter
