#include "sim/residual_probe.hpp"

#include <unordered_map>

#include "graph/ops.hpp"
#include "metrics/metrics.hpp"
#include "obs/residuals.hpp"
#include "sim/cost_model.hpp"

namespace convmeter {

std::size_t record_layer_residuals(
    obs::MetricsRegistry& registry, const DeviceSpec& device,
    const Graph& graph, const Shape& input_shape,
    std::span<const MeasuredLayerTime> measured) {
  std::unordered_map<NodeId, double> measured_by_node;
  measured_by_node.reserve(measured.size());
  double measured_total = 0.0;
  for (const MeasuredLayerTime& m : measured) {
    measured_by_node.emplace(m.node, m.seconds);
    measured_total += m.seconds;
  }

  std::size_t recorded = 0;
  double predicted_total = 0.0;
  for (const LayerWork& work : per_layer_work(graph, input_shape)) {
    const Node& node = graph.node(work.node);
    if (node.kind == OpKind::kInput) continue;
    const double predicted = kernel_time(device, work);
    predicted_total += predicted;
    const auto it = measured_by_node.find(work.node);
    if (it == measured_by_node.end()) continue;
    obs::record_prediction_residual(registry, op_kind_name(node.kind),
                                    predicted, it->second);
    ++recorded;
  }
  if (recorded > 0) {
    obs::record_prediction_residual(registry, "graph", predicted_total,
                                    measured_total);
    ++recorded;
  }
  return recorded;
}

std::size_t record_layer_residuals(
    const DeviceSpec& device, const Graph& graph, const Shape& input_shape,
    std::span<const MeasuredLayerTime> measured) {
  return record_layer_residuals(obs::MetricsRegistry::instance(), device, graph,
                                input_shape, measured);
}

}  // namespace convmeter
