// Inference "measurement" source: the roofline forward-pass time plus
// seeded log-normal run-to-run jitter. This is what the benchmark campaign
// records in place of wall-clock PyTorch measurements (see DESIGN.md).
#pragma once

#include "common/rng.hpp"
#include "graph/graph.hpp"
#include "sim/device.hpp"
#include "tensor/shape.hpp"

namespace convmeter {

/// Simulates inference runs of ConvNet graphs on one device.
class InferenceSimulator {
 public:
  explicit InferenceSimulator(DeviceSpec device);

  const DeviceSpec& device() const { return device_; }

  /// Noise-free expected forward time (seconds).
  double expected(const Graph& graph, const Shape& input_shape) const;

  /// One simulated measurement: expected time with multiplicative
  /// log-normal jitter drawn from `rng`.
  double measure(const Graph& graph, const Shape& input_shape,
                 Rng& rng) const;

 private:
  DeviceSpec device_;
};

}  // namespace convmeter
