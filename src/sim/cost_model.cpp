#include "sim/cost_model.hpp"

#include <algorithm>

namespace convmeter {

namespace {

constexpr double kBytesPerElem = 4.0;  // float32

}  // namespace

double kernel_time(const DeviceSpec& device, const LayerWork& work) {
  if (work.flops == 0.0 && work.input_elems == 0.0 &&
      work.output_elems == 0.0) {
    return 0.0;  // structural node (graph input), no kernel
  }
  const double bytes =
      (work.input_elems + work.output_elems + work.param_elems) *
      kBytesPerElem;
  const double compute_time =
      work.flops > 0.0
          ? work.flops / device.effective_flops(work.flops, work.family)
          : 0.0;
  const double memory_time =
      bytes > 0.0 ? bytes / device.effective_bandwidth(bytes) : 0.0;
  return std::max(compute_time, memory_time) + device.launch_overhead;
}

double forward_time(const DeviceSpec& device, const Graph& graph,
                    const Shape& input_shape) {
  double total = 0.0;
  for (const LayerWork& w : per_layer_work(graph, input_shape)) {
    total += kernel_time(device, w);
  }
  return total;
}

double memory_footprint_bytes(const Graph& graph, const Shape& input_shape,
                              bool training) {
  const auto work = per_layer_work(graph, input_shape);
  double activations = 0.0;
  double params = static_cast<double>(graph.parameter_count());
  for (const LayerWork& w : work) activations += w.output_elems;

  if (!training) {
    // Inference frees intermediates eagerly; a two-largest-tensors bound
    // would be tighter, but a fraction of the total is a reasonable proxy.
    return (params + 0.25 * activations) * kBytesPerElem;
  }
  // Training keeps every activation for the backward pass, plus gradients
  // and two Adam moments per parameter.
  return (params * 4.0 + activations * 2.0) * kBytesPerElem;
}

bool fits_in_memory(const DeviceSpec& device, const Graph& graph,
                    const Shape& input_shape, bool training) {
  return memory_footprint_bytes(graph, input_shape, training) <=
         device.memory_bytes;
}

}  // namespace convmeter
