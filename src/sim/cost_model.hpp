// Per-kernel roofline cost model.
//
// A kernel's time is the larger of its compute time and its memory time
// (classic roofline), plus the launch overhead. The forward pass of a graph
// is the sum of its kernels — frameworks execute ConvNet graphs layer by
// layer, which is exactly the structure ConvMeter's linear model assumes.
#pragma once

#include <cstdint>

#include "graph/graph.hpp"
#include "metrics/metrics.hpp"
#include "sim/device.hpp"
#include "tensor/shape.hpp"

namespace convmeter {

/// Noise-free execution time of a single kernel on `device`.
/// `work` describes the kernel (FLOPs and element traffic, float32).
double kernel_time(const DeviceSpec& device, const LayerWork& work);

/// Noise-free forward-pass (inference) time of `graph` at `input_shape`:
/// sum of kernel_time over all nodes.
double forward_time(const DeviceSpec& device, const Graph& graph,
                    const Shape& input_shape);

/// Estimated device-memory footprint of running `graph` at `input_shape`.
/// `training` additionally accounts for stored activations, gradients and
/// Adam optimizer state. Used to honor the paper's "as long as the
/// available memory on the target system allows" sweep bound.
double memory_footprint_bytes(const Graph& graph, const Shape& input_shape,
                              bool training);

/// True when the footprint fits the device's memory.
bool fits_in_memory(const DeviceSpec& device, const Graph& graph,
                    const Shape& input_shape, bool training);

}  // namespace convmeter
