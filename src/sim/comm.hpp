// Communication fabric model: NVLink within a node, InfiniBand between
// nodes, ring-all-reduce gradient synchronization (the NCCL/Horovod path
// the paper's cluster uses).
#pragma once

#include <cstdint>
#include <string>

namespace convmeter {

/// Bandwidths and latencies of the two-level GPU interconnect.
struct CommFabric {
  std::string name;
  double nvlink_bandwidth = 0.0;   ///< bytes/s between GPUs inside a node
  double nvlink_latency = 0.0;     ///< seconds per intra-node hop
  double ib_bandwidth = 0.0;       ///< bytes/s between nodes (per node)
  double ib_latency = 0.0;         ///< seconds per inter-node hop
  double per_tensor_overhead = 0.0;///< software cost per all-reduce call
  double noise_sigma = 0.0;        ///< lognormal sigma of comm jitter

  /// Time for a ring-all-reduce of `bytes` over `num_devices` GPUs spread
  /// across `num_nodes` nodes (devices per node = num_devices/num_nodes).
  ///
  /// Single node: plain NVLink ring, 2(n-1)/n * bytes / bw + hop latencies.
  /// Multiple nodes: hierarchical (reduce-scatter within nodes, ring across
  /// nodes over InfiniBand, broadcast within nodes) — the inter-node ring
  /// dominates, so the time grows with the node count through both the
  /// (m-1)/m bandwidth factor and the per-hop latency, matching the paper's
  /// observation that inter-node communication is the bottleneck.
  double ring_allreduce_time(double bytes, int num_devices,
                             int num_nodes) const;
};

/// The paper's cluster fabric: NVLink3 + four HDR-200 InfiniBand cards per
/// node.
CommFabric nvlink_hdr200_fabric();

}  // namespace convmeter
