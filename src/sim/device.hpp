// Simulated compute devices.
//
// The paper measures on an Intel Xeon Gold 5318Y core and NVIDIA A100-80GB
// GPUs; neither is available here, so the benchmark campaigns run against a
// roofline-style device model instead (see DESIGN.md, substitution table).
// The model captures exactly the effects ConvMeter's regression has to
// absorb: compute-bound vs memory-bound kernels, per-kernel launch
// overhead, and poor utilization for small workloads.
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "metrics/metrics.hpp"

namespace convmeter {

/// Parameters of a simulated device.
///
/// Efficiency model: a kernel with `work` FLOPs reaches
///   eff(work) = max_efficiency * work / (work + saturation_flops)
/// of peak throughput — small kernels underutilize the device, which is the
/// behaviour the paper observes for small batch/image sizes on the A100
/// (Sec. 4.2: "low computational intensity and underutilization").
/// The same saturating curve (with saturation_bytes) applies to bandwidth.
struct DeviceSpec {
  std::string name;
  double peak_flops = 0.0;         ///< FLOP/s at full utilization
  double mem_bandwidth = 0.0;      ///< bytes/s at full utilization
  double max_efficiency = 1.0;     ///< fraction of peak dense conv reaches
  double saturation_flops = 0.0;   ///< FLOPs at which eff reaches 50% of max
  double saturation_bytes = 0.0;   ///< bytes at which bw eff reaches 50% of max
  double launch_overhead = 0.0;    ///< seconds per kernel launch / op dispatch
  double memory_bytes = 0.0;       ///< device memory capacity
  double noise_sigma = 0.0;        ///< lognormal sigma of run-to-run jitter
  /// Per-op-family compute-efficiency multipliers on max_efficiency,
  /// indexed by OpFamily with dense conv as the 1.0 reference. Attention
  /// kernels (softmax, head transposes, short per-head GEMMs) and norm /
  /// elementwise kernels (bandwidth-bound, near-zero arithmetic intensity)
  /// reach a much smaller fraction of peak than blocked conv/GEMM — the
  /// distinct cost curves the segmented predictor has to absorb.
  std::array<double, kNumOpFamilies> family_efficiency{1.0, 1.0, 1.0, 1.0,
                                                       1.0};

  /// Achieved FLOP/s for a kernel of the given size.
  double effective_flops(double work) const;

  /// Achieved FLOP/s for a kernel of the given size and family.
  double effective_flops(double work, OpFamily family) const;

  /// Achieved bytes/s for a kernel moving the given volume.
  double effective_bandwidth(double bytes) const;
};

/// One core of an Intel Xeon Gold 5318Y (2.1 GHz, AVX-512), the CPU the
/// paper uses for single-core inference.
DeviceSpec xeon_gold_5318y_core();

/// NVIDIA A100-80GB (TF32 tensor-core path, as PyTorch uses by default).
DeviceSpec a100_80gb();

/// Jetson-class embedded GPU (8 GB, ~60 GB/s LPDDR). Not part of the
/// paper's evaluation — it backs the future-work extension bench
/// (`bench/ext_edge_device`), which re-tunes the same model form for an
/// edge platform.
DeviceSpec jetson_class_edge();

/// Look up a preset by name ("xeon_5318y" / "a100" / "jetson_edge");
/// throws for others.
DeviceSpec device_by_name(const std::string& name);

}  // namespace convmeter
