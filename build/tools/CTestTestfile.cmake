# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cli_list_models "/root/repo/build/tools/convmeter" "list-models")
set_tests_properties(cli_list_models PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;5;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_metrics "/root/repo/build/tools/convmeter" "metrics" "--model" "resnet50")
set_tests_properties(cli_metrics PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;6;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_show "/root/repo/build/tools/convmeter" "show" "--model" "alexnet")
set_tests_properties(cli_show PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;7;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_dot "/root/repo/build/tools/convmeter" "dot" "--model" "alexnet" "--image" "224")
set_tests_properties(cli_dot PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;8;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_usage_error "/root/repo/build/tools/convmeter" "predict")
set_tests_properties(cli_usage_error PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;9;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_workflow "/usr/bin/cmake" "-DCONVMETER=/root/repo/build/tools/convmeter" "-DWORKDIR=/root/repo/build/cli_workflow" "-P" "/root/repo/tools/cli_workflow_test.cmake")
set_tests_properties(cli_workflow PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;11;add_test;/root/repo/tools/CMakeLists.txt;0;")
