file(REMOVE_RECURSE
  "CMakeFiles/convmeter.dir/convmeter_cli.cpp.o"
  "CMakeFiles/convmeter.dir/convmeter_cli.cpp.o.d"
  "convmeter"
  "convmeter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/convmeter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
