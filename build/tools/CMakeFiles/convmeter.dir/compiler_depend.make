# Empty compiler generated dependencies file for convmeter.
# This may be replaced when dependencies are built.
