file(REMOVE_RECURSE
  "CMakeFiles/train_time_estimator.dir/train_time_estimator.cpp.o"
  "CMakeFiles/train_time_estimator.dir/train_time_estimator.cpp.o.d"
  "train_time_estimator"
  "train_time_estimator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/train_time_estimator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
