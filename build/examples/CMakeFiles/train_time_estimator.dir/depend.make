# Empty dependencies file for train_time_estimator.
# This may be replaced when dependencies are built.
