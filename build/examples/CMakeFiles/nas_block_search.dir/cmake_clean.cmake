file(REMOVE_RECURSE
  "CMakeFiles/nas_block_search.dir/nas_block_search.cpp.o"
  "CMakeFiles/nas_block_search.dir/nas_block_search.cpp.o.d"
  "nas_block_search"
  "nas_block_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nas_block_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
