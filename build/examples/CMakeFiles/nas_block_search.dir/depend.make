# Empty dependencies file for nas_block_search.
# This may be replaced when dependencies are built.
