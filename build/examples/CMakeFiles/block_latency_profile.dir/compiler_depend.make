# Empty compiler generated dependencies file for block_latency_profile.
# This may be replaced when dependencies are built.
