file(REMOVE_RECURSE
  "CMakeFiles/block_latency_profile.dir/block_latency_profile.cpp.o"
  "CMakeFiles/block_latency_profile.dir/block_latency_profile.cpp.o.d"
  "block_latency_profile"
  "block_latency_profile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/block_latency_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
