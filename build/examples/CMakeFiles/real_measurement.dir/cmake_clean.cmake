file(REMOVE_RECURSE
  "CMakeFiles/real_measurement.dir/real_measurement.cpp.o"
  "CMakeFiles/real_measurement.dir/real_measurement.cpp.o.d"
  "real_measurement"
  "real_measurement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/real_measurement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
