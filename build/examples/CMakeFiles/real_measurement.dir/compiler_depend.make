# Empty compiler generated dependencies file for real_measurement.
# This may be replaced when dependencies are built.
