# Empty compiler generated dependencies file for infra_planner.
# This may be replaced when dependencies are built.
