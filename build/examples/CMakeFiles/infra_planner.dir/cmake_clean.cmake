file(REMOVE_RECURSE
  "CMakeFiles/infra_planner.dir/infra_planner.cpp.o"
  "CMakeFiles/infra_planner.dir/infra_planner.cpp.o.d"
  "infra_planner"
  "infra_planner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/infra_planner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
