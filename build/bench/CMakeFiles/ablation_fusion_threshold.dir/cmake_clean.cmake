file(REMOVE_RECURSE
  "CMakeFiles/ablation_fusion_threshold.dir/ablation_fusion_threshold.cpp.o"
  "CMakeFiles/ablation_fusion_threshold.dir/ablation_fusion_threshold.cpp.o.d"
  "ablation_fusion_threshold"
  "ablation_fusion_threshold.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_fusion_threshold.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
