# Empty dependencies file for ablation_fusion_threshold.
# This may be replaced when dependencies are built.
