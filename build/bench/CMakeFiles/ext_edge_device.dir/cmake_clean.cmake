file(REMOVE_RECURSE
  "CMakeFiles/ext_edge_device.dir/ext_edge_device.cpp.o"
  "CMakeFiles/ext_edge_device.dir/ext_edge_device.cpp.o.d"
  "ext_edge_device"
  "ext_edge_device.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_edge_device.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
