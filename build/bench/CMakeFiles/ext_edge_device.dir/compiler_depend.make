# Empty compiler generated dependencies file for ext_edge_device.
# This may be replaced when dependencies are built.
