file(REMOVE_RECURSE
  "CMakeFiles/table2_fig4_blockwise.dir/table2_fig4_blockwise.cpp.o"
  "CMakeFiles/table2_fig4_blockwise.dir/table2_fig4_blockwise.cpp.o.d"
  "table2_fig4_blockwise"
  "table2_fig4_blockwise.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_fig4_blockwise.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
