# Empty compiler generated dependencies file for fig8_node_scalability.
# This may be replaced when dependencies are built.
