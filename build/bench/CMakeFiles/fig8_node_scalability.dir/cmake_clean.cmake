file(REMOVE_RECURSE
  "CMakeFiles/fig8_node_scalability.dir/fig8_node_scalability.cpp.o"
  "CMakeFiles/fig8_node_scalability.dir/fig8_node_scalability.cpp.o.d"
  "fig8_node_scalability"
  "fig8_node_scalability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_node_scalability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
