file(REMOVE_RECURSE
  "CMakeFiles/ext_model_parallel.dir/ext_model_parallel.cpp.o"
  "CMakeFiles/ext_model_parallel.dir/ext_model_parallel.cpp.o.d"
  "ext_model_parallel"
  "ext_model_parallel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_model_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
