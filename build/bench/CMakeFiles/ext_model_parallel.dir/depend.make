# Empty dependencies file for ext_model_parallel.
# This may be replaced when dependencies are built.
