# Empty compiler generated dependencies file for fig2_metric_ablation.
# This may be replaced when dependencies are built.
