file(REMOVE_RECURSE
  "CMakeFiles/fig2_metric_ablation.dir/fig2_metric_ablation.cpp.o"
  "CMakeFiles/fig2_metric_ablation.dir/fig2_metric_ablation.cpp.o.d"
  "fig2_metric_ablation"
  "fig2_metric_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_metric_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
