# Empty dependencies file for table1_fig3_inference.
# This may be replaced when dependencies are built.
