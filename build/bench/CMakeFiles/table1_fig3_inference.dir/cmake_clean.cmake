file(REMOVE_RECURSE
  "CMakeFiles/table1_fig3_inference.dir/table1_fig3_inference.cpp.o"
  "CMakeFiles/table1_fig3_inference.dir/table1_fig3_inference.cpp.o.d"
  "table1_fig3_inference"
  "table1_fig3_inference.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_fig3_inference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
