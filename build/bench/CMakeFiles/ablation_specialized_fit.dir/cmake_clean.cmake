file(REMOVE_RECURSE
  "CMakeFiles/ablation_specialized_fit.dir/ablation_specialized_fit.cpp.o"
  "CMakeFiles/ablation_specialized_fit.dir/ablation_specialized_fit.cpp.o.d"
  "ablation_specialized_fit"
  "ablation_specialized_fit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_specialized_fit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
