# Empty compiler generated dependencies file for ablation_specialized_fit.
# This may be replaced when dependencies are built.
