# Empty compiler generated dependencies file for cm_bench_util.
# This may be replaced when dependencies are built.
