file(REMOVE_RECURSE
  "../lib/libcm_bench_util.a"
  "../lib/libcm_bench_util.pdb"
  "CMakeFiles/cm_bench_util.dir/bench_util.cpp.o"
  "CMakeFiles/cm_bench_util.dir/bench_util.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cm_bench_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
