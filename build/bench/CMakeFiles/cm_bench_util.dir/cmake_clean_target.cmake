file(REMOVE_RECURSE
  "../lib/libcm_bench_util.a"
)
