file(REMOVE_RECURSE
  "CMakeFiles/ablation_noise_robustness.dir/ablation_noise_robustness.cpp.o"
  "CMakeFiles/ablation_noise_robustness.dir/ablation_noise_robustness.cpp.o.d"
  "ablation_noise_robustness"
  "ablation_noise_robustness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_noise_robustness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
