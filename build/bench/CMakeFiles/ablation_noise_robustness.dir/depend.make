# Empty dependencies file for ablation_noise_robustness.
# This may be replaced when dependencies are built.
