# Empty dependencies file for ext_real_data_parallel.
# This may be replaced when dependencies are built.
