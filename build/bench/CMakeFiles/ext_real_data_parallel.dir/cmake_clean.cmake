file(REMOVE_RECURSE
  "CMakeFiles/ext_real_data_parallel.dir/ext_real_data_parallel.cpp.o"
  "CMakeFiles/ext_real_data_parallel.dir/ext_real_data_parallel.cpp.o.d"
  "ext_real_data_parallel"
  "ext_real_data_parallel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_real_data_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
