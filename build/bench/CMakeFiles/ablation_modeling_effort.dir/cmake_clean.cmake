file(REMOVE_RECURSE
  "CMakeFiles/ablation_modeling_effort.dir/ablation_modeling_effort.cpp.o"
  "CMakeFiles/ablation_modeling_effort.dir/ablation_modeling_effort.cpp.o.d"
  "ablation_modeling_effort"
  "ablation_modeling_effort.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_modeling_effort.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
