# Empty dependencies file for ablation_modeling_effort.
# This may be replaced when dependencies are built.
