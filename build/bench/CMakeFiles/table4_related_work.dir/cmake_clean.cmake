file(REMOVE_RECURSE
  "CMakeFiles/table4_related_work.dir/table4_related_work.cpp.o"
  "CMakeFiles/table4_related_work.dir/table4_related_work.cpp.o.d"
  "table4_related_work"
  "table4_related_work.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_related_work.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
