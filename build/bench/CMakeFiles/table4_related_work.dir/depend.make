# Empty dependencies file for table4_related_work.
# This may be replaced when dependencies are built.
