# Empty dependencies file for ablation_cross_device.
# This may be replaced when dependencies are built.
