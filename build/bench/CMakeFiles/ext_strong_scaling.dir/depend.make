# Empty dependencies file for ext_strong_scaling.
# This may be replaced when dependencies are built.
