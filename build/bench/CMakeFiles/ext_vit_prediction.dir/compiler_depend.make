# Empty compiler generated dependencies file for ext_vit_prediction.
# This may be replaced when dependencies are built.
