file(REMOVE_RECURSE
  "CMakeFiles/ext_vit_prediction.dir/ext_vit_prediction.cpp.o"
  "CMakeFiles/ext_vit_prediction.dir/ext_vit_prediction.cpp.o.d"
  "ext_vit_prediction"
  "ext_vit_prediction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_vit_prediction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
