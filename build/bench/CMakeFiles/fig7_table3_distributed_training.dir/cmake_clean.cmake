file(REMOVE_RECURSE
  "CMakeFiles/fig7_table3_distributed_training.dir/fig7_table3_distributed_training.cpp.o"
  "CMakeFiles/fig7_table3_distributed_training.dir/fig7_table3_distributed_training.cpp.o.d"
  "fig7_table3_distributed_training"
  "fig7_table3_distributed_training.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_table3_distributed_training.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
