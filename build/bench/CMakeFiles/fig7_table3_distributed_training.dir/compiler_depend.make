# Empty compiler generated dependencies file for fig7_table3_distributed_training.
# This may be replaced when dependencies are built.
