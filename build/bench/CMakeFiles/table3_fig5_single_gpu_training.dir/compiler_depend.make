# Empty compiler generated dependencies file for table3_fig5_single_gpu_training.
# This may be replaced when dependencies are built.
