# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/tensor_test[1]_include.cmake")
include("/root/repo/build/tests/graph_test[1]_include.cmake")
include("/root/repo/build/tests/shape_inference_test[1]_include.cmake")
include("/root/repo/build/tests/serialize_test[1]_include.cmake")
include("/root/repo/build/tests/subgraph_test[1]_include.cmake")
include("/root/repo/build/tests/models_test[1]_include.cmake")
include("/root/repo/build/tests/metrics_test[1]_include.cmake")
include("/root/repo/build/tests/linalg_test[1]_include.cmake")
include("/root/repo/build/tests/regress_test[1]_include.cmake")
include("/root/repo/build/tests/thread_pool_test[1]_include.cmake")
include("/root/repo/build/tests/exec_kernels_test[1]_include.cmake")
include("/root/repo/build/tests/executor_test[1]_include.cmake")
include("/root/repo/build/tests/backward_test[1]_include.cmake")
include("/root/repo/build/tests/trainer_test[1]_include.cmake")
include("/root/repo/build/tests/vit_test[1]_include.cmake")
include("/root/repo/build/tests/collective_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/collect_test[1]_include.cmake")
include("/root/repo/build/tests/convmeter_test[1]_include.cmake")
include("/root/repo/build/tests/evaluate_test[1]_include.cmake")
include("/root/repo/build/tests/scalability_test[1]_include.cmake")
include("/root/repo/build/tests/partition_test[1]_include.cmake")
include("/root/repo/build/tests/baselines_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
