file(REMOVE_RECURSE
  "CMakeFiles/shape_inference_test.dir/shape_inference_test.cpp.o"
  "CMakeFiles/shape_inference_test.dir/shape_inference_test.cpp.o.d"
  "shape_inference_test"
  "shape_inference_test.pdb"
  "shape_inference_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shape_inference_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
