# Empty dependencies file for exec_kernels_test.
# This may be replaced when dependencies are built.
