file(REMOVE_RECURSE
  "CMakeFiles/exec_kernels_test.dir/exec_kernels_test.cpp.o"
  "CMakeFiles/exec_kernels_test.dir/exec_kernels_test.cpp.o.d"
  "exec_kernels_test"
  "exec_kernels_test.pdb"
  "exec_kernels_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exec_kernels_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
