file(REMOVE_RECURSE
  "CMakeFiles/vit_test.dir/vit_test.cpp.o"
  "CMakeFiles/vit_test.dir/vit_test.cpp.o.d"
  "vit_test"
  "vit_test.pdb"
  "vit_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vit_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
