# Empty compiler generated dependencies file for vit_test.
# This may be replaced when dependencies are built.
