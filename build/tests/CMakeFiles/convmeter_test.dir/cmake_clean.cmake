file(REMOVE_RECURSE
  "CMakeFiles/convmeter_test.dir/convmeter_test.cpp.o"
  "CMakeFiles/convmeter_test.dir/convmeter_test.cpp.o.d"
  "convmeter_test"
  "convmeter_test.pdb"
  "convmeter_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/convmeter_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
