
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/convmeter_test.cpp" "tests/CMakeFiles/convmeter_test.dir/convmeter_test.cpp.o" "gcc" "tests/CMakeFiles/convmeter_test.dir/convmeter_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/cm_core.dir/DependInfo.cmake"
  "/root/repo/build/src/collect/CMakeFiles/cm_collect.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/cm_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/models/CMakeFiles/cm_models.dir/DependInfo.cmake"
  "/root/repo/build/src/regress/CMakeFiles/cm_regress.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/cm_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/cm_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/cm_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/cm_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/cm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
