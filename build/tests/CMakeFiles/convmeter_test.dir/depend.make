# Empty dependencies file for convmeter_test.
# This may be replaced when dependencies are built.
