file(REMOVE_RECURSE
  "libcm_models.a"
)
