# Empty compiler generated dependencies file for cm_models.
# This may be replaced when dependencies are built.
