
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/models/alexnet.cpp" "src/models/CMakeFiles/cm_models.dir/alexnet.cpp.o" "gcc" "src/models/CMakeFiles/cm_models.dir/alexnet.cpp.o.d"
  "/root/repo/src/models/blocks.cpp" "src/models/CMakeFiles/cm_models.dir/blocks.cpp.o" "gcc" "src/models/CMakeFiles/cm_models.dir/blocks.cpp.o.d"
  "/root/repo/src/models/densenet.cpp" "src/models/CMakeFiles/cm_models.dir/densenet.cpp.o" "gcc" "src/models/CMakeFiles/cm_models.dir/densenet.cpp.o.d"
  "/root/repo/src/models/efficientnet.cpp" "src/models/CMakeFiles/cm_models.dir/efficientnet.cpp.o" "gcc" "src/models/CMakeFiles/cm_models.dir/efficientnet.cpp.o.d"
  "/root/repo/src/models/googlenet.cpp" "src/models/CMakeFiles/cm_models.dir/googlenet.cpp.o" "gcc" "src/models/CMakeFiles/cm_models.dir/googlenet.cpp.o.d"
  "/root/repo/src/models/inception.cpp" "src/models/CMakeFiles/cm_models.dir/inception.cpp.o" "gcc" "src/models/CMakeFiles/cm_models.dir/inception.cpp.o.d"
  "/root/repo/src/models/mobile_ops.cpp" "src/models/CMakeFiles/cm_models.dir/mobile_ops.cpp.o" "gcc" "src/models/CMakeFiles/cm_models.dir/mobile_ops.cpp.o.d"
  "/root/repo/src/models/mobilenet_v2.cpp" "src/models/CMakeFiles/cm_models.dir/mobilenet_v2.cpp.o" "gcc" "src/models/CMakeFiles/cm_models.dir/mobilenet_v2.cpp.o.d"
  "/root/repo/src/models/mobilenet_v3.cpp" "src/models/CMakeFiles/cm_models.dir/mobilenet_v3.cpp.o" "gcc" "src/models/CMakeFiles/cm_models.dir/mobilenet_v3.cpp.o.d"
  "/root/repo/src/models/regnet.cpp" "src/models/CMakeFiles/cm_models.dir/regnet.cpp.o" "gcc" "src/models/CMakeFiles/cm_models.dir/regnet.cpp.o.d"
  "/root/repo/src/models/resnet.cpp" "src/models/CMakeFiles/cm_models.dir/resnet.cpp.o" "gcc" "src/models/CMakeFiles/cm_models.dir/resnet.cpp.o.d"
  "/root/repo/src/models/shufflenet.cpp" "src/models/CMakeFiles/cm_models.dir/shufflenet.cpp.o" "gcc" "src/models/CMakeFiles/cm_models.dir/shufflenet.cpp.o.d"
  "/root/repo/src/models/squeezenet.cpp" "src/models/CMakeFiles/cm_models.dir/squeezenet.cpp.o" "gcc" "src/models/CMakeFiles/cm_models.dir/squeezenet.cpp.o.d"
  "/root/repo/src/models/vgg.cpp" "src/models/CMakeFiles/cm_models.dir/vgg.cpp.o" "gcc" "src/models/CMakeFiles/cm_models.dir/vgg.cpp.o.d"
  "/root/repo/src/models/vit.cpp" "src/models/CMakeFiles/cm_models.dir/vit.cpp.o" "gcc" "src/models/CMakeFiles/cm_models.dir/vit.cpp.o.d"
  "/root/repo/src/models/zoo.cpp" "src/models/CMakeFiles/cm_models.dir/zoo.cpp.o" "gcc" "src/models/CMakeFiles/cm_models.dir/zoo.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/cm_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/cm_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/cm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
