file(REMOVE_RECURSE
  "libcm_common.a"
)
