file(REMOVE_RECURSE
  "CMakeFiles/cm_common.dir/csv.cpp.o"
  "CMakeFiles/cm_common.dir/csv.cpp.o.d"
  "CMakeFiles/cm_common.dir/error.cpp.o"
  "CMakeFiles/cm_common.dir/error.cpp.o.d"
  "CMakeFiles/cm_common.dir/rng.cpp.o"
  "CMakeFiles/cm_common.dir/rng.cpp.o.d"
  "CMakeFiles/cm_common.dir/strings.cpp.o"
  "CMakeFiles/cm_common.dir/strings.cpp.o.d"
  "CMakeFiles/cm_common.dir/table.cpp.o"
  "CMakeFiles/cm_common.dir/table.cpp.o.d"
  "CMakeFiles/cm_common.dir/units.cpp.o"
  "CMakeFiles/cm_common.dir/units.cpp.o.d"
  "libcm_common.a"
  "libcm_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cm_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
