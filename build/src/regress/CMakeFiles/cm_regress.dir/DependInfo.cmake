
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/regress/error_metrics.cpp" "src/regress/CMakeFiles/cm_regress.dir/error_metrics.cpp.o" "gcc" "src/regress/CMakeFiles/cm_regress.dir/error_metrics.cpp.o.d"
  "/root/repo/src/regress/linear_model.cpp" "src/regress/CMakeFiles/cm_regress.dir/linear_model.cpp.o" "gcc" "src/regress/CMakeFiles/cm_regress.dir/linear_model.cpp.o.d"
  "/root/repo/src/regress/loo.cpp" "src/regress/CMakeFiles/cm_regress.dir/loo.cpp.o" "gcc" "src/regress/CMakeFiles/cm_regress.dir/loo.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/linalg/CMakeFiles/cm_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/cm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
