file(REMOVE_RECURSE
  "libcm_regress.a"
)
