file(REMOVE_RECURSE
  "CMakeFiles/cm_regress.dir/error_metrics.cpp.o"
  "CMakeFiles/cm_regress.dir/error_metrics.cpp.o.d"
  "CMakeFiles/cm_regress.dir/linear_model.cpp.o"
  "CMakeFiles/cm_regress.dir/linear_model.cpp.o.d"
  "CMakeFiles/cm_regress.dir/loo.cpp.o"
  "CMakeFiles/cm_regress.dir/loo.cpp.o.d"
  "libcm_regress.a"
  "libcm_regress.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cm_regress.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
