# Empty compiler generated dependencies file for cm_regress.
# This may be replaced when dependencies are built.
