# Empty dependencies file for cm_graph.
# This may be replaced when dependencies are built.
