file(REMOVE_RECURSE
  "CMakeFiles/cm_graph.dir/dot.cpp.o"
  "CMakeFiles/cm_graph.dir/dot.cpp.o.d"
  "CMakeFiles/cm_graph.dir/graph.cpp.o"
  "CMakeFiles/cm_graph.dir/graph.cpp.o.d"
  "CMakeFiles/cm_graph.dir/ops.cpp.o"
  "CMakeFiles/cm_graph.dir/ops.cpp.o.d"
  "CMakeFiles/cm_graph.dir/serialize.cpp.o"
  "CMakeFiles/cm_graph.dir/serialize.cpp.o.d"
  "CMakeFiles/cm_graph.dir/shape_inference.cpp.o"
  "CMakeFiles/cm_graph.dir/shape_inference.cpp.o.d"
  "CMakeFiles/cm_graph.dir/subgraph.cpp.o"
  "CMakeFiles/cm_graph.dir/subgraph.cpp.o.d"
  "libcm_graph.a"
  "libcm_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cm_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
