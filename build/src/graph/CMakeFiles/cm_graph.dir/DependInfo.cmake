
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/dot.cpp" "src/graph/CMakeFiles/cm_graph.dir/dot.cpp.o" "gcc" "src/graph/CMakeFiles/cm_graph.dir/dot.cpp.o.d"
  "/root/repo/src/graph/graph.cpp" "src/graph/CMakeFiles/cm_graph.dir/graph.cpp.o" "gcc" "src/graph/CMakeFiles/cm_graph.dir/graph.cpp.o.d"
  "/root/repo/src/graph/ops.cpp" "src/graph/CMakeFiles/cm_graph.dir/ops.cpp.o" "gcc" "src/graph/CMakeFiles/cm_graph.dir/ops.cpp.o.d"
  "/root/repo/src/graph/serialize.cpp" "src/graph/CMakeFiles/cm_graph.dir/serialize.cpp.o" "gcc" "src/graph/CMakeFiles/cm_graph.dir/serialize.cpp.o.d"
  "/root/repo/src/graph/shape_inference.cpp" "src/graph/CMakeFiles/cm_graph.dir/shape_inference.cpp.o" "gcc" "src/graph/CMakeFiles/cm_graph.dir/shape_inference.cpp.o.d"
  "/root/repo/src/graph/subgraph.cpp" "src/graph/CMakeFiles/cm_graph.dir/subgraph.cpp.o" "gcc" "src/graph/CMakeFiles/cm_graph.dir/subgraph.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/cm_common.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/cm_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
