file(REMOVE_RECURSE
  "libcm_metrics.a"
)
