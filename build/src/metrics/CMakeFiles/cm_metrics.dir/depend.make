# Empty dependencies file for cm_metrics.
# This may be replaced when dependencies are built.
