file(REMOVE_RECURSE
  "CMakeFiles/cm_metrics.dir/metrics.cpp.o"
  "CMakeFiles/cm_metrics.dir/metrics.cpp.o.d"
  "libcm_metrics.a"
  "libcm_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cm_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
