file(REMOVE_RECURSE
  "CMakeFiles/cm_linalg.dir/matrix.cpp.o"
  "CMakeFiles/cm_linalg.dir/matrix.cpp.o.d"
  "CMakeFiles/cm_linalg.dir/stats.cpp.o"
  "CMakeFiles/cm_linalg.dir/stats.cpp.o.d"
  "libcm_linalg.a"
  "libcm_linalg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cm_linalg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
