file(REMOVE_RECURSE
  "libcm_linalg.a"
)
