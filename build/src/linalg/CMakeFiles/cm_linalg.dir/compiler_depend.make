# Empty compiler generated dependencies file for cm_linalg.
# This may be replaced when dependencies are built.
