file(REMOVE_RECURSE
  "CMakeFiles/cm_collect.dir/campaign.cpp.o"
  "CMakeFiles/cm_collect.dir/campaign.cpp.o.d"
  "CMakeFiles/cm_collect.dir/sample.cpp.o"
  "CMakeFiles/cm_collect.dir/sample.cpp.o.d"
  "libcm_collect.a"
  "libcm_collect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cm_collect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
