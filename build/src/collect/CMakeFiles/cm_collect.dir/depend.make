# Empty dependencies file for cm_collect.
# This may be replaced when dependencies are built.
