file(REMOVE_RECURSE
  "libcm_collect.a"
)
