# Empty compiler generated dependencies file for cm_tensor.
# This may be replaced when dependencies are built.
