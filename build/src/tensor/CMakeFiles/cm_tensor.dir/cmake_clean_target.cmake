file(REMOVE_RECURSE
  "libcm_tensor.a"
)
