file(REMOVE_RECURSE
  "CMakeFiles/cm_tensor.dir/shape.cpp.o"
  "CMakeFiles/cm_tensor.dir/shape.cpp.o.d"
  "CMakeFiles/cm_tensor.dir/tensor.cpp.o"
  "CMakeFiles/cm_tensor.dir/tensor.cpp.o.d"
  "libcm_tensor.a"
  "libcm_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cm_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
