file(REMOVE_RECURSE
  "CMakeFiles/cm_sim.dir/comm.cpp.o"
  "CMakeFiles/cm_sim.dir/comm.cpp.o.d"
  "CMakeFiles/cm_sim.dir/cost_model.cpp.o"
  "CMakeFiles/cm_sim.dir/cost_model.cpp.o.d"
  "CMakeFiles/cm_sim.dir/device.cpp.o"
  "CMakeFiles/cm_sim.dir/device.cpp.o.d"
  "CMakeFiles/cm_sim.dir/inference_sim.cpp.o"
  "CMakeFiles/cm_sim.dir/inference_sim.cpp.o.d"
  "CMakeFiles/cm_sim.dir/training_sim.cpp.o"
  "CMakeFiles/cm_sim.dir/training_sim.cpp.o.d"
  "libcm_sim.a"
  "libcm_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cm_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
