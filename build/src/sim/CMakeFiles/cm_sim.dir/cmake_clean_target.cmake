file(REMOVE_RECURSE
  "libcm_sim.a"
)
