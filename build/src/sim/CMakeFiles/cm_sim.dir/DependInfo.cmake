
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/comm.cpp" "src/sim/CMakeFiles/cm_sim.dir/comm.cpp.o" "gcc" "src/sim/CMakeFiles/cm_sim.dir/comm.cpp.o.d"
  "/root/repo/src/sim/cost_model.cpp" "src/sim/CMakeFiles/cm_sim.dir/cost_model.cpp.o" "gcc" "src/sim/CMakeFiles/cm_sim.dir/cost_model.cpp.o.d"
  "/root/repo/src/sim/device.cpp" "src/sim/CMakeFiles/cm_sim.dir/device.cpp.o" "gcc" "src/sim/CMakeFiles/cm_sim.dir/device.cpp.o.d"
  "/root/repo/src/sim/inference_sim.cpp" "src/sim/CMakeFiles/cm_sim.dir/inference_sim.cpp.o" "gcc" "src/sim/CMakeFiles/cm_sim.dir/inference_sim.cpp.o.d"
  "/root/repo/src/sim/training_sim.cpp" "src/sim/CMakeFiles/cm_sim.dir/training_sim.cpp.o" "gcc" "src/sim/CMakeFiles/cm_sim.dir/training_sim.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/metrics/CMakeFiles/cm_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/cm_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/cm_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/cm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
