file(REMOVE_RECURSE
  "CMakeFiles/cm_core.dir/convmeter.cpp.o"
  "CMakeFiles/cm_core.dir/convmeter.cpp.o.d"
  "CMakeFiles/cm_core.dir/evaluate.cpp.o"
  "CMakeFiles/cm_core.dir/evaluate.cpp.o.d"
  "CMakeFiles/cm_core.dir/features.cpp.o"
  "CMakeFiles/cm_core.dir/features.cpp.o.d"
  "CMakeFiles/cm_core.dir/partition.cpp.o"
  "CMakeFiles/cm_core.dir/partition.cpp.o.d"
  "CMakeFiles/cm_core.dir/scalability.cpp.o"
  "CMakeFiles/cm_core.dir/scalability.cpp.o.d"
  "libcm_core.a"
  "libcm_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cm_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
