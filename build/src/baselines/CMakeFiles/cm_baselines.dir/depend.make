# Empty dependencies file for cm_baselines.
# This may be replaced when dependencies are built.
