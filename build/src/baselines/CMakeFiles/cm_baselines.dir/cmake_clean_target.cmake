file(REMOVE_RECURSE
  "libcm_baselines.a"
)
