file(REMOVE_RECURSE
  "CMakeFiles/cm_baselines.dir/dippm_like.cpp.o"
  "CMakeFiles/cm_baselines.dir/dippm_like.cpp.o.d"
  "CMakeFiles/cm_baselines.dir/mlp.cpp.o"
  "CMakeFiles/cm_baselines.dir/mlp.cpp.o.d"
  "CMakeFiles/cm_baselines.dir/paleo_like.cpp.o"
  "CMakeFiles/cm_baselines.dir/paleo_like.cpp.o.d"
  "CMakeFiles/cm_baselines.dir/simple.cpp.o"
  "CMakeFiles/cm_baselines.dir/simple.cpp.o.d"
  "libcm_baselines.a"
  "libcm_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cm_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
