# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("tensor")
subdirs("graph")
subdirs("models")
subdirs("metrics")
subdirs("linalg")
subdirs("regress")
subdirs("exec")
subdirs("sim")
subdirs("collect")
subdirs("core")
subdirs("baselines")
