file(REMOVE_RECURSE
  "CMakeFiles/cm_exec.dir/backward.cpp.o"
  "CMakeFiles/cm_exec.dir/backward.cpp.o.d"
  "CMakeFiles/cm_exec.dir/collective.cpp.o"
  "CMakeFiles/cm_exec.dir/collective.cpp.o.d"
  "CMakeFiles/cm_exec.dir/data_parallel.cpp.o"
  "CMakeFiles/cm_exec.dir/data_parallel.cpp.o.d"
  "CMakeFiles/cm_exec.dir/executor.cpp.o"
  "CMakeFiles/cm_exec.dir/executor.cpp.o.d"
  "CMakeFiles/cm_exec.dir/kernels.cpp.o"
  "CMakeFiles/cm_exec.dir/kernels.cpp.o.d"
  "CMakeFiles/cm_exec.dir/thread_pool.cpp.o"
  "CMakeFiles/cm_exec.dir/thread_pool.cpp.o.d"
  "CMakeFiles/cm_exec.dir/trainer.cpp.o"
  "CMakeFiles/cm_exec.dir/trainer.cpp.o.d"
  "libcm_exec.a"
  "libcm_exec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cm_exec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
