file(REMOVE_RECURSE
  "libcm_exec.a"
)
