# Empty compiler generated dependencies file for cm_exec.
# This may be replaced when dependencies are built.
