
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/exec/backward.cpp" "src/exec/CMakeFiles/cm_exec.dir/backward.cpp.o" "gcc" "src/exec/CMakeFiles/cm_exec.dir/backward.cpp.o.d"
  "/root/repo/src/exec/collective.cpp" "src/exec/CMakeFiles/cm_exec.dir/collective.cpp.o" "gcc" "src/exec/CMakeFiles/cm_exec.dir/collective.cpp.o.d"
  "/root/repo/src/exec/data_parallel.cpp" "src/exec/CMakeFiles/cm_exec.dir/data_parallel.cpp.o" "gcc" "src/exec/CMakeFiles/cm_exec.dir/data_parallel.cpp.o.d"
  "/root/repo/src/exec/executor.cpp" "src/exec/CMakeFiles/cm_exec.dir/executor.cpp.o" "gcc" "src/exec/CMakeFiles/cm_exec.dir/executor.cpp.o.d"
  "/root/repo/src/exec/kernels.cpp" "src/exec/CMakeFiles/cm_exec.dir/kernels.cpp.o" "gcc" "src/exec/CMakeFiles/cm_exec.dir/kernels.cpp.o.d"
  "/root/repo/src/exec/thread_pool.cpp" "src/exec/CMakeFiles/cm_exec.dir/thread_pool.cpp.o" "gcc" "src/exec/CMakeFiles/cm_exec.dir/thread_pool.cpp.o.d"
  "/root/repo/src/exec/trainer.cpp" "src/exec/CMakeFiles/cm_exec.dir/trainer.cpp.o" "gcc" "src/exec/CMakeFiles/cm_exec.dir/trainer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/cm_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/cm_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/cm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
