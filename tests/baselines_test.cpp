// Baseline-predictor tests: single-metric baselines, the MLP regressor on
// learnable synthetic functions, and the DIPPM-like wrapper's contract.
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "baselines/dippm_like.hpp"
#include "baselines/mlp.hpp"
#include "baselines/simple.hpp"
#include "common/rng.hpp"

namespace convmeter {
namespace {

std::vector<RuntimeSample> inference_samples() {
  std::vector<RuntimeSample> samples;
  Rng rng(31);
  for (int mdl = 0; mdl < 6; ++mdl) {
    const double f = 5e8 * (mdl + 1);
    for (const double batch : {1.0, 4.0, 16.0, 64.0, 256.0}) {
      RuntimeSample s;
      s.model = mdl == 0 ? "squeezenet1_0" : "net" + std::to_string(mdl);
      s.image_size = 128;
      s.global_batch = static_cast<std::int64_t>(batch);
      s.flops1 = f;
      s.inputs1 = f / 320.0;
      s.outputs1 = f / 260.0;
      s.weights = 1e6 * (mdl + 2);
      s.layers = 30.0 + 5 * mdl;
      s.t_infer = batch * (1.5e-12 * f + 2e-9 * s.inputs1) + 1e-4;
      s.t_infer *= rng.lognormal_factor(0.03);
      samples.push_back(s);
    }
  }
  return samples;
}

TEST(SimpleBaselineTest, FitsAndPredictsEachFeatureSet) {
  const auto samples = inference_samples();
  for (const FeatureSet fs :
       {FeatureSet::kFlopsOnly, FeatureSet::kInputsOnly,
        FeatureSet::kOutputsOnly, FeatureSet::kCombined}) {
    const SimpleBaseline b = SimpleBaseline::fit(samples, fs);
    EXPECT_EQ(b.feature_set(), fs);
    EXPECT_EQ(b.name(), feature_set_name(fs));
    EXPECT_GT(b.predict(samples.front()), 0.0);
  }
}

TEST(SimpleBaselineTest, CombinedFitsBetterThanWorstSingleMetric) {
  const auto samples = inference_samples();
  const auto sse = [&](const SimpleBaseline& b) {
    double total = 0.0;
    for (const auto& s : samples) {
      const double e = b.predict(s) - s.t_infer;
      total += e * e;
    }
    return total;
  };
  const double combined =
      sse(SimpleBaseline::fit(samples, FeatureSet::kCombined));
  const double outputs =
      sse(SimpleBaseline::fit(samples, FeatureSet::kOutputsOnly));
  EXPECT_LE(combined, outputs * 1.0001);
}

TEST(MlpTest, LearnsLinearFunction) {
  Rng rng(5);
  constexpr std::size_t n = 256;
  Matrix x(n, 2);
  Vector y(n);
  for (std::size_t r = 0; r < n; ++r) {
    x(r, 0) = rng.uniform(0.0, 4.0);
    x(r, 1) = rng.uniform(0.0, 4.0);
    y[r] = std::exp(0.5 * x(r, 0) - 0.25 * x(r, 1));
  }
  MlpConfig cfg;
  cfg.epochs = 300;
  const MlpPredictor mlp = MlpPredictor::fit(x, y, cfg);
  // In-sample relative error should be small for a learnable target.
  double worst = 0.0;
  for (std::size_t r = 0; r < n; r += 16) {
    const double pred = mlp.predict({x(r, 0), x(r, 1)});
    worst = std::max(worst, std::fabs(pred - y[r]) / y[r]);
  }
  EXPECT_LT(worst, 0.25);
}

TEST(MlpTest, LossDecreasesWithTraining) {
  Rng rng(6);
  constexpr std::size_t n = 128;
  Matrix x(n, 2);
  Vector y(n);
  for (std::size_t r = 0; r < n; ++r) {
    x(r, 0) = rng.uniform(0.0, 2.0);
    x(r, 1) = rng.uniform(0.0, 2.0);
    y[r] = std::exp(x(r, 0) + 0.5 * x(r, 1));
  }
  MlpConfig short_cfg;
  short_cfg.epochs = 2;
  MlpConfig long_cfg;
  long_cfg.epochs = 200;
  const double early = MlpPredictor::fit(x, y, short_cfg).loss(x, y);
  const double late = MlpPredictor::fit(x, y, long_cfg).loss(x, y);
  EXPECT_LT(late, early);
}

TEST(MlpTest, DeterministicForSeed) {
  Rng rng(7);
  Matrix x(32, 1);
  Vector y(32);
  for (std::size_t r = 0; r < 32; ++r) {
    x(r, 0) = rng.uniform(0.0, 1.0);
    y[r] = std::exp(x(r, 0));
  }
  MlpConfig cfg;
  cfg.epochs = 20;
  const double a = MlpPredictor::fit(x, y, cfg).predict({0.5});
  const double b = MlpPredictor::fit(x, y, cfg).predict({0.5});
  EXPECT_DOUBLE_EQ(a, b);
}

TEST(MlpTest, RejectsNonPositiveTargets) {
  Matrix x(4, 1, 1.0);
  EXPECT_THROW(MlpPredictor::fit(x, {1.0, 2.0, 0.0, 3.0}), InvalidArgument);
}

TEST(MlpTest, PredictWidthChecked) {
  Matrix x(8, 2, 1.0);
  Vector y(8, 1.0);
  for (std::size_t r = 0; r < 8; ++r) x(r, 0) = static_cast<double>(r);
  MlpConfig cfg;
  cfg.epochs = 1;
  const MlpPredictor mlp = MlpPredictor::fit(x, y, cfg);
  EXPECT_THROW(mlp.predict({1.0}), InvalidArgument);
}

TEST(DippmLikeTest, CannotParseSqueezeNet) {
  EXPECT_FALSE(DippmLikePredictor::can_parse("squeezenet1_0"));
  EXPECT_TRUE(DippmLikePredictor::can_parse("resnet50"));
  EXPECT_TRUE(DippmLikePredictor::can_parse("squeezenet1_1"));
}

TEST(DippmLikeTest, FitsAndPredictsParsableModels) {
  const auto samples = inference_samples();
  MlpConfig cfg;
  cfg.epochs = 50;
  const DippmLikePredictor p = DippmLikePredictor::fit(samples, cfg);
  for (const auto& s : samples) {
    if (!DippmLikePredictor::can_parse(s.model)) continue;
    EXPECT_GT(p.predict(s), 0.0);
  }
}

TEST(DippmLikeTest, PredictThrowsForUnparsableModel) {
  const auto samples = inference_samples();
  MlpConfig cfg;
  cfg.epochs = 5;
  const DippmLikePredictor p = DippmLikePredictor::fit(samples, cfg);
  RuntimeSample sq = samples.front();
  ASSERT_EQ(sq.model, "squeezenet1_0");
  EXPECT_THROW(p.predict(sq), InvalidArgument);
}

TEST(DippmLikeTest, NeedsEnoughSamples) {
  const auto all = inference_samples();
  const std::vector<RuntimeSample> few(all.begin(), all.begin() + 4);
  EXPECT_THROW(DippmLikePredictor::fit(few), InvalidArgument);
}

}  // namespace
}  // namespace convmeter

// ---- Paleo-like analytical baseline -------------------------------------

#include "baselines/paleo_like.hpp"
#include "models/zoo.hpp"
#include "sim/inference_sim.hpp"

namespace convmeter {
namespace {

TEST(PaleoLikeTest, PredictsPositiveTimes) {
  const PaleoLikePredictor p(PaleoDeviceSheet::a100_datasheet());
  const Graph g = models::build("resnet18");
  const double t1 = p.predict(g, Shape::nchw(1, 3, 224, 224));
  const double t64 = p.predict(g, Shape::nchw(64, 3, 224, 224));
  EXPECT_GT(t1, 0.0);
  EXPECT_GT(t64, 10.0 * t1);  // near-linear in batch
}

TEST(PaleoLikeTest, HigherPlatformPercentIsFaster) {
  const Graph g = models::build("resnet18");
  const Shape in = Shape::nchw(8, 3, 224, 224);
  const double slow =
      PaleoLikePredictor(PaleoDeviceSheet::a100_datasheet(0.25)).predict(g, in);
  const double fast =
      PaleoLikePredictor(PaleoDeviceSheet::a100_datasheet(0.9)).predict(g, in);
  EXPECT_GT(slow, fast);
}

TEST(PaleoLikeTest, UnderestimatesVsCalibratedSimulator) {
  // The critique the paper levels at pure-analytical prediction: datasheet
  // peaks are optimistic, so the estimate comes in low at small batch.
  const Graph g = models::build("resnet50");
  const Shape in = Shape::nchw(1, 3, 224, 224);
  const double paleo =
      PaleoLikePredictor(PaleoDeviceSheet::a100_datasheet(1.0)).predict(g, in);
  InferenceSimulator sim(a100_80gb());
  EXPECT_LT(paleo, sim.expected(g, in));
}

TEST(PaleoLikeTest, ValidatesSheet) {
  PaleoDeviceSheet bad;
  EXPECT_THROW(PaleoLikePredictor{bad}, InvalidArgument);
  PaleoDeviceSheet out_of_range = PaleoDeviceSheet::a100_datasheet();
  out_of_range.platform_percent = 1.5;
  EXPECT_THROW(PaleoLikePredictor{out_of_range}, InvalidArgument);
}

TEST(EdgeDeviceTest, PresetIsRegistered) {
  const DeviceSpec edge = device_by_name("jetson_edge");
  EXPECT_EQ(edge.name, "jetson_edge");
  // Slower than the A100, faster than one Xeon core at large kernels.
  EXPECT_LT(edge.peak_flops, a100_80gb().peak_flops);
  EXPECT_GT(edge.peak_flops, xeon_gold_5318y_core().peak_flops);
}

}  // namespace
}  // namespace convmeter
