// MeasurementBackend contract, factory, graph-cache, and parallel-campaign
// determinism tests: jobs=N must reproduce the serial sample stream bit for
// bit, for every campaign kind.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "backend/backend.hpp"
#include "backend/real_backend.hpp"
#include "backend/sim_backend.hpp"
#include "collect/campaign.hpp"
#include "collect/graph_cache.hpp"
#include "common/error.hpp"
#include "models/zoo.hpp"
#include "obs/metrics_registry.hpp"
#include "obs/trace.hpp"

namespace convmeter {
namespace {

InferenceSweep tiny_inference_sweep() {
  InferenceSweep sweep;
  sweep.models = {"alexnet", "resnet18"};
  sweep.image_sizes = {64, 128};
  sweep.batch_sizes = {1, 16};
  sweep.repetitions = 2;
  return sweep;
}

TrainingSweep tiny_training_sweep() {
  TrainingSweep sweep;
  sweep.models = {"resnet18", "squeezenet1_0"};
  sweep.image_sizes = {64};
  sweep.per_device_batch_sizes = {16, 64};
  sweep.node_counts = {1, 2};
  sweep.devices_per_node = 4;
  sweep.repetitions = 2;
  return sweep;
}

std::vector<BlockCase> tiny_blocks() {
  std::vector<BlockCase> blocks;
  for (const char* label : {"A", "B"}) {
    Graph g(label);
    NodeId x = g.input(32);
    g.conv2d("c", x, Conv2dAttrs::square(32, 32, 3, 1, 1));
    blocks.push_back({label, std::move(g), Shape::nchw(1, 32, 28, 28)});
  }
  return blocks;
}

/// Bit-identical: every field compared with exact equality, doubles too.
void expect_identical(const std::vector<RuntimeSample>& a,
                      const std::vector<RuntimeSample>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].model, b[i].model) << i;
    EXPECT_EQ(a[i].device, b[i].device) << i;
    EXPECT_EQ(a[i].image_size, b[i].image_size) << i;
    EXPECT_EQ(a[i].global_batch, b[i].global_batch) << i;
    EXPECT_EQ(a[i].num_devices, b[i].num_devices) << i;
    EXPECT_EQ(a[i].num_nodes, b[i].num_nodes) << i;
    EXPECT_EQ(a[i].flops1, b[i].flops1) << i;
    EXPECT_EQ(a[i].inputs1, b[i].inputs1) << i;
    EXPECT_EQ(a[i].outputs1, b[i].outputs1) << i;
    EXPECT_EQ(a[i].weights, b[i].weights) << i;
    EXPECT_EQ(a[i].layers, b[i].layers) << i;
    EXPECT_EQ(a[i].t_infer, b[i].t_infer) << i;
    EXPECT_EQ(a[i].t_fwd, b[i].t_fwd) << i;
    EXPECT_EQ(a[i].t_bwd, b[i].t_bwd) << i;
    EXPECT_EQ(a[i].t_grad, b[i].t_grad) << i;
    EXPECT_EQ(a[i].t_step, b[i].t_step) << i;
  }
}

TEST(BackendContractTest, SimInferenceSupportsOnlyInference) {
  SimInferenceBackend backend(a100_80gb());
  EXPECT_TRUE(backend.supports_inference());
  EXPECT_FALSE(backend.supports_training());
  EXPECT_EQ(backend.max_concurrency(), 0);  // fully thread-safe

  const Graph g = models::build("squeezenet1_1");
  Rng rng(1);
  const auto m =
      backend.measure_inference(g, Shape::nchw(1, 3, 64, 64), rng);
  EXPECT_GT(m.seconds, 0.0);
  EXPECT_THROW(backend.measure_train_step(g, Shape::nchw(1, 3, 64, 64),
                                          TrainConfig{}, rng),
               InvalidArgument);
}

TEST(BackendContractTest, SimTrainingSupportsOnlyTraining) {
  SimTrainingBackend backend(a100_80gb(), nvlink_hdr200_fabric());
  EXPECT_FALSE(backend.supports_inference());
  EXPECT_TRUE(backend.supports_training());

  const Graph g = models::build("resnet18");
  Rng rng(1);
  const auto m = backend.measure_train_step(g, Shape::nchw(16, 3, 64, 64),
                                            TrainConfig{}, rng);
  EXPECT_GT(m.times.fwd, 0.0);
  EXPECT_GT(m.times.step, 0.0);
  EXPECT_THROW(backend.measure_inference(g, Shape::nchw(1, 3, 64, 64), rng),
               InvalidArgument);
}

TEST(BackendContractTest, FitsRejectsOverMemoryShapes) {
  SimInferenceBackend backend(a100_80gb());
  const Graph g = models::build("vgg16");
  EXPECT_TRUE(backend.fits(g, Shape::nchw(1, 3, 224, 224), false));
  EXPECT_FALSE(backend.fits(g, Shape::nchw(1 << 20, 3, 224, 224), false));
}

TEST(BackendFactoryTest, EverySpecConstructsBothModes) {
  // The mode-pinned aliases ignore the --train flag by design: campaign
  // scripts name the measurement they mean.
  for (const std::string& spec : backend_specs()) {
    if (spec == "real-inference" || spec == "real-training") continue;
    const auto inference = make_backend(spec, /*training=*/false);
    ASSERT_NE(inference, nullptr) << spec;
    EXPECT_TRUE(inference->supports_inference()) << spec;
    const auto training = make_backend(spec, /*training=*/true);
    ASSERT_NE(training, nullptr) << spec;
    EXPECT_TRUE(training->supports_training()) << spec;
  }
}

TEST(BackendFactoryTest, ModePinnedAliasesIgnoreTrainingFlag) {
  for (const bool training : {false, true}) {
    const auto inference = make_backend("real-inference", training);
    ASSERT_NE(inference, nullptr);
    EXPECT_TRUE(inference->supports_inference());
    EXPECT_FALSE(inference->supports_training());
    const auto trainer = make_backend("real-training", training);
    ASSERT_NE(trainer, nullptr);
    EXPECT_TRUE(trainer->supports_training());
    EXPECT_FALSE(trainer->supports_inference());
  }
}

TEST(BackendFactoryTest, DevicePresetNamesAreSpecsToo) {
  const auto backend = make_backend("xeon_5318y");
  EXPECT_EQ(backend->device().name, "xeon_5318y");
}

TEST(BackendFactoryTest, UnknownSpecThrows) {
  EXPECT_THROW(make_backend("tpu-v9"), InvalidArgument);
}

TEST(RealBackendTest, InferenceMeasuresPositiveWallClock) {
  RealInferenceBackend backend(0);
  EXPECT_EQ(backend.max_concurrency(), 1);
  EXPECT_EQ(backend.device().name, "host-cpu");
  EXPECT_GT(backend.device().memory_bytes, 0);

  const Graph g = models::build("squeezenet1_1");
  Rng rng(7);
  const auto m = backend.measure_inference(g, Shape::nchw(1, 3, 32, 32), rng);
  EXPECT_GT(m.seconds, 0.0);
  EXPECT_TRUE(std::isnan(m.expected));  // no noise-free model of this CPU
}

TEST(RealBackendTest, TrainingStepPhasesPositive) {
  RealTrainingBackend backend;
  const Graph g = models::build("squeezenet1_1");
  Rng rng(7);
  const auto m = backend.measure_train_step(g, Shape::nchw(2, 3, 32, 32),
                                            TrainConfig{}, rng);
  EXPECT_GT(m.times.fwd, 0.0);
  EXPECT_GT(m.times.bwd, 0.0);
  EXPECT_GT(m.times.step, 0.0);
  EXPECT_TRUE(std::isnan(m.expected_step));
}

TEST(RealBackendTest, MultiDeviceTrainingRejected) {
  RealTrainingBackend backend;
  const Graph g = models::build("squeezenet1_1");
  Rng rng(7);
  TrainConfig config;
  config.num_devices = 2;
  EXPECT_THROW(backend.measure_train_step(g, Shape::nchw(2, 3, 32, 32),
                                          config, rng),
               InvalidArgument);
}

TEST(CampaignDeterminismTest, InferenceParallelMatchesSerial) {
  SimInferenceBackend backend(a100_80gb());
  CampaignOptions serial;
  serial.jobs = 1;
  CampaignOptions parallel;
  parallel.jobs = 4;
  const auto a = run_inference_campaign(backend, tiny_inference_sweep(),
                                        serial);
  const auto b = run_inference_campaign(backend, tiny_inference_sweep(),
                                        parallel);
  expect_identical(a, b);
}

TEST(CampaignDeterminismTest, TrainingParallelMatchesSerial) {
  SimTrainingBackend backend(a100_80gb(), nvlink_hdr200_fabric());
  CampaignOptions serial;
  serial.jobs = 1;
  CampaignOptions parallel;
  parallel.jobs = 4;
  const auto a = run_training_campaign(backend, tiny_training_sweep(),
                                       serial);
  const auto b = run_training_campaign(backend, tiny_training_sweep(),
                                       parallel);
  expect_identical(a, b);
}

TEST(CampaignDeterminismTest, BlockParallelMatchesSerial) {
  SimInferenceBackend backend(a100_80gb());
  CampaignOptions serial;
  serial.jobs = 1;
  CampaignOptions parallel;
  parallel.jobs = 4;
  const auto blocks_a = tiny_blocks();
  const auto blocks_b = tiny_blocks();
  const auto a =
      run_block_campaign(backend, blocks_a, {1, 8, 32}, 3, 42, serial);
  const auto b =
      run_block_campaign(backend, blocks_b, {1, 8, 32}, 3, 42, parallel);
  expect_identical(a, b);
}

TEST(CampaignDeterminismTest, JobsZeroSelectsHardwareConcurrency) {
  // jobs=0 (auto) must still match the serial stream exactly.
  SimInferenceBackend backend(a100_80gb());
  CampaignOptions automatic;
  automatic.jobs = 0;
  const auto a = run_inference_campaign(backend, tiny_inference_sweep());
  const auto b = run_inference_campaign(backend, tiny_inference_sweep(),
                                        automatic);
  expect_identical(a, b);
}

TEST(CampaignSinkTest, CsvSinkStreamsEverySampleInOrder) {
  SimInferenceBackend backend(a100_80gb());
  std::ostringstream os;
  CsvSampleSink sink(os);
  CampaignOptions options;
  options.jobs = 4;
  options.sink = &sink;
  const auto samples =
      run_inference_campaign(backend, tiny_inference_sweep(), options);

  std::string expected = sample_csv_header() + "\n";
  for (const auto& s : samples) {
    expected += sample_to_csv_row(s) + "\n";
  }
  EXPECT_EQ(os.str(), expected);
}

TEST(CampaignTelemetryTest, RecordsThroughputAndCacheTraffic) {
  obs::set_enabled(true);
  obs::MetricsRegistry::instance().reset();
  GraphCache::instance().clear();

  SimInferenceBackend backend(a100_80gb());
  CampaignOptions options;
  options.jobs = 2;
  const auto samples =
      run_inference_campaign(backend, tiny_inference_sweep(), options);
  obs::set_enabled(false);

  auto& registry = obs::MetricsRegistry::instance();
  EXPECT_EQ(registry.counter("campaign.inference_samples").value(),
            samples.size());
  EXPECT_GT(registry.gauge("campaign.samples_per_sec").value(), 0.0);
  // 2 models x 2 images, each resolved exactly once...
  EXPECT_EQ(registry.counter("campaign.graph_cache.misses").value(), 6u);
  // ...then re-read per batch size (graph lookups hit too).
  EXPECT_GT(registry.counter("campaign.graph_cache.hits").value(), 0u);
}

TEST(GraphCacheTest, CachesGraphsAndInfeasibleResolutions) {
  GraphCache& cache = GraphCache::instance();
  cache.clear();
  const auto g1 = cache.graph("alexnet");
  const auto g2 = cache.graph("alexnet");
  EXPECT_EQ(g1.get(), g2.get());  // memoized, same graph object

  // AlexNet's stem collapses below ~63 px: infeasible, cached as nullopt.
  EXPECT_FALSE(cache.metrics_b1("alexnet", 32).has_value());
  EXPECT_FALSE(cache.metrics_b1("alexnet", 32).has_value());
  const std::optional<GraphMetrics> m = cache.metrics_b1("alexnet", 224);
  ASSERT_TRUE(m.has_value());
  EXPECT_GT(m->flops, 0.0);
  EXPECT_DOUBLE_EQ(cache.metrics_b1("alexnet", 224)->flops, m->flops);
}

TEST(GraphCacheTest, EvictsLeastRecentlyUsedGraphs) {
  GraphCache& cache = GraphCache::instance();
  cache.clear();
  cache.set_capacity(2, 4);
  const std::uint64_t before = cache.evictions();

  // An evicted graph's shared_ptr keeps the object alive for its holders.
  const auto alex = cache.graph("alexnet");
  cache.graph("squeezenet1_1");
  cache.graph("resnet18");  // evicts alexnet (capacity 2, LRU)
  EXPECT_EQ(cache.evictions(), before + 1);
  EXPECT_GT(alex->size(), 0u);

  // Re-requesting the evicted model rebuilds it: a distinct object.
  const auto alex2 = cache.graph("alexnet");
  EXPECT_NE(alex.get(), alex2.get());

  cache.set_capacity(GraphCache::kDefaultGraphCapacity,
                     GraphCache::kDefaultMetricsCapacity);
  cache.clear();
}

}  // namespace
}  // namespace convmeter
