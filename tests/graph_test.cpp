// Unit tests for src/graph: builders, validation, queries, op registry.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "graph/graph.hpp"

namespace convmeter {
namespace {

Graph tiny_graph() {
  Graph g("tiny");
  NodeId x = g.input(3);
  x = g.conv2d("conv1", x, Conv2dAttrs::square(3, 8, 3, 1, 1));
  x = g.batch_norm("bn1", x, 8);
  x = g.activation("relu1", x, ActKind::kReLU);
  return g;
}

TEST(GraphTest, BuilderProducesTopologicalIds) {
  const Graph g = tiny_graph();
  EXPECT_EQ(g.size(), 4u);
  for (const auto& n : g.nodes()) {
    for (const NodeId in : n.inputs) EXPECT_LT(in, n.id);
  }
}

TEST(GraphTest, InputMustBeFirst) {
  Graph g("bad");
  g.input(3);
  EXPECT_THROW(g.input(3), InvalidArgument);
}

TEST(GraphTest, InputChannelsRecorded) {
  EXPECT_EQ(tiny_graph().input_channels(), 3);
}

TEST(GraphTest, ValidatePassesForWellFormedGraph) {
  EXPECT_NO_THROW(tiny_graph().validate());
}

TEST(GraphTest, ValidateRejectsDuplicateNames) {
  Graph g("dup");
  NodeId x = g.input(3);
  g.activation("a", x, ActKind::kReLU);
  g.activation("a", x, ActKind::kReLU);
  EXPECT_THROW(g.validate(), InvalidArgument);
}

TEST(GraphTest, ValidateRejectsMultipleSinks) {
  Graph g("two-sinks");
  NodeId x = g.input(3);
  g.activation("a", x, ActKind::kReLU);
  g.activation("b", x, ActKind::kReLU);
  EXPECT_THROW(g.validate(), InvalidArgument);
}

TEST(GraphTest, OutputIdFindsUniqueSink) {
  const Graph g = tiny_graph();
  EXPECT_EQ(g.output_id(), g.find("relu1"));
}

TEST(GraphTest, FindByNameAndMissingThrows) {
  const Graph g = tiny_graph();
  EXPECT_EQ(g.find("conv1"), 1);
  EXPECT_THROW(g.find("nope"), InvalidArgument);
}

TEST(GraphTest, CountAndListKinds) {
  const Graph g = tiny_graph();
  EXPECT_EQ(g.count_kind(OpKind::kConv2d), 1u);
  EXPECT_EQ(g.count_kind(OpKind::kLinear), 0u);
  const auto convs = g.nodes_of_kind(OpKind::kConv2d);
  ASSERT_EQ(convs.size(), 1u);
  EXPECT_EQ(g.node(convs[0]).name, "conv1");
}

TEST(GraphTest, ParameterCountConvBnLinear) {
  Graph g("params");
  NodeId x = g.input(3);
  x = g.conv2d("c", x, Conv2dAttrs::square(3, 8, 3));  // 8*3*9 = 216
  x = g.batch_norm("b", x, 8);                         // 16
  x = g.adaptive_avg_pool("p", x, 1, 1);
  x = g.flatten("f", x);
  g.linear("l", x, LinearAttrs{8, 10, true});          // 80 + 10
  EXPECT_EQ(g.parameter_count(), 216 + 16 + 90);
}

TEST(GraphTest, ConvBiasAddsParameters) {
  EXPECT_EQ(Conv2dAttrs::square(3, 8, 3, 1, 0, 1, true).parameter_count(),
            216 + 8);
  EXPECT_EQ(Conv2dAttrs::square(3, 8, 3).parameter_count(), 216);
}

TEST(GraphTest, GroupedConvParameterCount) {
  // Depthwise: 8 groups of 1x3x3.
  EXPECT_EQ(Conv2dAttrs::square(8, 8, 3, 1, 1, 8).parameter_count(), 72);
}

TEST(GraphTest, ConvRejectsBadGroups) {
  Graph g("bad-groups");
  NodeId x = g.input(3);
  EXPECT_THROW(g.conv2d("c", x, Conv2dAttrs::square(3, 8, 3, 1, 0, 2)),
               InvalidArgument);
}

TEST(GraphTest, ConcatRequiresTwoInputs) {
  Graph g("concat");
  NodeId x = g.input(3);
  EXPECT_THROW(g.concat("cat", {x}), InvalidArgument);
}

TEST(GraphTest, DropoutProbabilityValidated) {
  Graph g("dropout");
  NodeId x = g.input(3);
  EXPECT_THROW(g.dropout("d", x, 1.0), InvalidArgument);
  EXPECT_THROW(g.dropout("d", x, -0.1), InvalidArgument);
  EXPECT_NO_THROW(g.dropout("d", x, 0.5));
}

TEST(GraphTest, ForwardReferencesRejectedAtBuild) {
  Graph g("fwd-ref");
  g.input(3);
  EXPECT_THROW(g.activation("a", 5, ActKind::kReLU), InvalidArgument);
}

TEST(GraphTest, TypedAttributeAccessThrowsOnMismatch) {
  const Graph g = tiny_graph();
  const Node& conv = g.node(g.find("conv1"));
  EXPECT_NO_THROW(conv.as<Conv2dAttrs>());
  EXPECT_THROW(conv.as<LinearAttrs>(), InvalidArgument);
}

TEST(OpsTest, OpKindNamesRoundTrip) {
  for (const OpKind k :
       {OpKind::kInput, OpKind::kConv2d, OpKind::kBatchNorm2d,
        OpKind::kActivation, OpKind::kMaxPool2d, OpKind::kAvgPool2d,
        OpKind::kAdaptiveAvgPool2d, OpKind::kLinear, OpKind::kFlatten,
        OpKind::kAdd, OpKind::kMultiply, OpKind::kConcat, OpKind::kDropout,
        OpKind::kToTokens, OpKind::kLayerNorm, OpKind::kSelfAttention,
        OpKind::kSelectToken}) {
    EXPECT_EQ(op_kind_from_name(op_kind_name(k)), k);
  }
  EXPECT_THROW(op_kind_from_name("warp"), ParseError);
}

TEST(OpsTest, ActKindNamesRoundTrip) {
  for (const ActKind k :
       {ActKind::kReLU, ActKind::kReLU6, ActKind::kSiLU, ActKind::kSigmoid,
        ActKind::kHardSwish, ActKind::kHardSigmoid, ActKind::kTanh,
        ActKind::kGELU}) {
    EXPECT_EQ(act_kind_from_name(act_kind_name(k)), k);
  }
  EXPECT_THROW(act_kind_from_name("mish"), ParseError);
}

}  // namespace
}  // namespace convmeter
