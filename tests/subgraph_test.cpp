// Tests for generic block extraction and the named paper blocks (Table 2).
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "graph/shape_inference.hpp"
#include "graph/subgraph.hpp"
#include "models/blocks.hpp"
#include "models/zoo.hpp"

namespace convmeter {
namespace {

TEST(SubgraphTest, ExtractLinearChain) {
  Graph g("chain");
  NodeId x = g.input(4);
  x = g.conv2d("c1", x, Conv2dAttrs::square(4, 8, 3, 1, 1));
  NodeId mid_first = g.batch_norm("b1", x, 8);
  NodeId mid_last = g.activation("r1", mid_first, ActKind::kReLU);
  g.conv2d("c2", mid_last, Conv2dAttrs::square(8, 8, 1));

  const Graph block = extract_block(g, x, mid_last, 8, "mid");
  EXPECT_EQ(block.size(), 3u);  // input + bn + relu
  EXPECT_EQ(block.input_channels(), 8);
  EXPECT_NO_THROW(block.validate());
}

TEST(SubgraphTest, ExtractResidualRegionKeepsBothPaths) {
  Graph g("res");
  NodeId x = g.input(8);
  NodeId entry = g.activation("pre", x, ActKind::kReLU);
  NodeId y = g.conv2d("c", entry, Conv2dAttrs::square(8, 8, 3, 1, 1));
  y = g.add("add", y, entry);
  NodeId exit = g.activation("post", y, ActKind::kReLU);

  const Graph block = extract_block(g, entry, exit, 8, "res-block");
  EXPECT_EQ(block.size(), 4u);
  // The add must consume both the conv output and the new input node.
  const Node& add_node = block.node(block.find("add"));
  EXPECT_EQ(add_node.inputs.size(), 2u);
}

TEST(SubgraphTest, ExternalReferenceOutsideEntryThrows) {
  Graph g("bad");
  NodeId x = g.input(8);
  NodeId a = g.activation("a", x, ActKind::kReLU);
  NodeId b = g.activation("b", a, ActKind::kReLU);
  g.add("sum", b, x);  // reaches past `a` back to the input
  EXPECT_THROW(extract_block(g, a, g.find("sum"), 8, "bad-block"),
               InvalidArgument);
}

TEST(SubgraphTest, InvalidRangeThrows) {
  const Graph g = models::build("resnet18");
  EXPECT_THROW(extract_block(g, 5, 5, 64, "x"), InvalidArgument);
  EXPECT_THROW(extract_block(g, -1, 3, 64, "x"), InvalidArgument);
}

TEST(NamedBlocksTest, PaperListsNineBlocks) {
  EXPECT_EQ(models::paper_blocks().size(), 9u);
}

class PaperBlockTest
    : public ::testing::TestWithParam<models::NamedBlock> {};

TEST_P(PaperBlockTest, ExtractsAndInfersShapes) {
  const models::BlockExtraction ex = models::extract_paper_block(GetParam());
  EXPECT_NO_THROW(ex.block.validate());
  EXPECT_GE(ex.block.count_kind(OpKind::kConv2d), 1u);
  ASSERT_EQ(ex.input_shape.rank(), 4u);
  // The standalone block accepts its native shape.
  EXPECT_NO_THROW(infer_shapes(ex.block, ex.input_shape));
  // And scales to other batch sizes.
  EXPECT_NO_THROW(infer_shapes(ex.block, ex.input_shape.with_batch(16)));
}

INSTANTIATE_TEST_SUITE_P(
    AllPaperBlocks, PaperBlockTest,
    ::testing::ValuesIn(models::paper_blocks()),
    [](const auto& info) { return info.param.label; });

TEST(NamedBlocksTest, BottleneckBlockHasExpectedStructure) {
  const auto& blocks = models::paper_blocks();
  const auto it =
      std::find_if(blocks.begin(), blocks.end(),
                   [](const auto& b) { return b.label == "Bottleneck4"; });
  ASSERT_NE(it, blocks.end());
  const models::BlockExtraction ex = models::extract_paper_block(*it);
  // ResNet50 bottleneck: 3 main convs + downsample conv.
  EXPECT_EQ(ex.block.count_kind(OpKind::kConv2d), 4u);
  EXPECT_EQ(ex.block.count_kind(OpKind::kAdd), 1u);
}

TEST(NamedBlocksTest, UnknownPrefixThrows) {
  const Graph g = models::build("resnet18");
  EXPECT_THROW(
      models::extract_named_block(g, "layer9.7", Shape::nchw(1, 3, 224, 224)),
      InvalidArgument);
}

TEST(NamedBlocksTest, BlockMetricsAreSubsetOfParent) {
  const Graph parent = models::build("resnet50");
  const models::BlockExtraction ex = models::extract_named_block(
      parent, "layer2.0", Shape::nchw(1, 3, 224, 224));
  EXPECT_LT(ex.block.parameter_count(), parent.parameter_count());
  EXPECT_GT(ex.block.parameter_count(), 0);
}

}  // namespace
}  // namespace convmeter
