// Scalability analyzer tests on planted training data with a known
// communication penalty, so turning points are predictable.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "core/scalability.hpp"

namespace convmeter {
namespace {

/// Training samples obeying: step = b*compute + comm_w*W + comm_n*N.
std::vector<RuntimeSample> comm_bound_samples(double comm_per_weight,
                                              double comm_per_device) {
  std::vector<RuntimeSample> samples;
  for (int mdl = 0; mdl < 4; ++mdl) {
    const double f = 2e9 * (mdl + 1);
    const double w = 1e7 * (4 - mdl);  // heavier weights on small models
    for (const double batch : {8.0, 32.0, 128.0}) {
      for (const int nodes : {1, 2, 4, 8, 16}) {
        RuntimeSample s;
        s.model = "net" + std::to_string(mdl);
        s.image_size = 128;
        s.num_nodes = nodes;
        s.num_devices = nodes * 4;
        s.global_batch = static_cast<std::int64_t>(batch * s.num_devices);
        s.flops1 = f;
        s.inputs1 = f / 300.0;
        s.outputs1 = f / 250.0;
        s.weights = w;
        s.layers = 60.0;
        s.t_fwd = batch * 1e-12 * f + 1e-4;
        s.t_bwd = 2.0 * s.t_fwd;
        s.t_grad = 1e-5 * s.layers +
                   (s.num_devices > 1
                        ? comm_per_weight * w + comm_per_device * s.num_devices
                        : 0.0);
        s.t_step = s.t_fwd + s.t_bwd + s.t_grad;
        samples.push_back(s);
      }
    }
  }
  return samples;
}

GraphMetrics metrics_for(double flops, double weights) {
  GraphMetrics m;
  m.flops = flops;
  m.conv_inputs = flops / 300.0;
  m.conv_outputs = flops / 250.0;
  m.weights = weights;
  m.layers = 60.0;
  return m;
}

TEST(ScalabilityTest, NodeSweepCoversRange) {
  const ConvMeter model =
      ConvMeter::fit_training(comm_bound_samples(1e-10, 5e-5));
  const ScalabilityAnalyzer analyzer(model, 4);
  const auto sweep = analyzer.node_sweep(metrics_for(4e9, 2e7), 64.0, 8);
  ASSERT_EQ(sweep.size(), 8u);
  for (int n = 0; n < 8; ++n) {
    EXPECT_EQ(sweep[static_cast<std::size_t>(n)].num_nodes, n + 1);
    EXPECT_GT(sweep[static_cast<std::size_t>(n)].throughput, 0.0);
  }
}

TEST(ScalabilityTest, WeakScalingThroughputGrowsForComputeBoundModel) {
  const ConvMeter model =
      ConvMeter::fit_training(comm_bound_samples(1e-12, 1e-6));
  const ScalabilityAnalyzer analyzer(model, 4);
  const auto sweep = analyzer.node_sweep(metrics_for(8e9, 1e6), 128.0, 16);
  for (std::size_t i = 1; i < sweep.size(); ++i) {
    EXPECT_GT(sweep[i].throughput, sweep[i - 1].throughput);
  }
}

TEST(ScalabilityTest, TurningPointEarlierForCommBoundModel) {
  const ConvMeter model =
      ConvMeter::fit_training(comm_bound_samples(2e-9, 2e-3));
  const ScalabilityAnalyzer analyzer(model, 4);
  // Heavy weights + tiny compute -> comm dominated -> early turning point.
  const int tp_comm = analyzer.turning_point(metrics_for(2e9, 4e7), 8.0, 32);
  // Light weights + big compute at large batch -> scales further.
  const int tp_compute =
      analyzer.turning_point(metrics_for(8e9, 1e6), 128.0, 32);
  EXPECT_LT(tp_comm, tp_compute);
}

TEST(ScalabilityTest, BatchSweepEvaluatesRequestedBatches) {
  const ConvMeter model =
      ConvMeter::fit_training(comm_bound_samples(1e-10, 5e-5));
  const ScalabilityAnalyzer analyzer(model, 4);
  const auto sweep =
      analyzer.batch_sweep(metrics_for(4e9, 2e7), {16.0, 64.0, 256.0}, 2);
  ASSERT_EQ(sweep.size(), 3u);
  EXPECT_DOUBLE_EQ(sweep[0].per_device_batch, 16.0);
  // Larger batches amortize fixed costs -> higher throughput.
  EXPECT_GT(sweep[2].throughput, sweep[0].throughput);
}

TEST(ScalabilityTest, BatchSweepExtrapolatesBeyondTrainingRange) {
  // The paper's "simulate batch sizes beyond device memory" use case:
  // the model was fitted on batches <= 128 but predicts 4096 fine.
  const ConvMeter model =
      ConvMeter::fit_training(comm_bound_samples(1e-10, 5e-5));
  const ScalabilityAnalyzer analyzer(model, 4);
  const auto sweep =
      analyzer.batch_sweep(metrics_for(4e9, 2e7), {4096.0}, 1);
  ASSERT_EQ(sweep.size(), 1u);
  EXPECT_GT(sweep[0].step_seconds, 0.0);
}

TEST(ScalabilityTest, ValidatesArguments) {
  const ConvMeter model =
      ConvMeter::fit_training(comm_bound_samples(1e-10, 5e-5));
  EXPECT_THROW(ScalabilityAnalyzer(model, 0), InvalidArgument);
  const ScalabilityAnalyzer analyzer(model, 4);
  EXPECT_THROW(analyzer.node_sweep(metrics_for(1e9, 1e6), 8.0, 0),
               InvalidArgument);
  EXPECT_THROW(analyzer.batch_sweep(metrics_for(1e9, 1e6), {-1.0}, 1),
               InvalidArgument);
  EXPECT_THROW(
      analyzer.turning_point(metrics_for(1e9, 1e6), 8.0, 16, 0.9),
      InvalidArgument);
}

TEST(ScalabilityTest, InferenceOnlyModelRejected) {
  std::vector<RuntimeSample> samples = comm_bound_samples(1e-10, 5e-5);
  for (auto& s : samples) s.t_infer = s.t_fwd;
  const ConvMeter inference_model = ConvMeter::fit_inference(samples);
  EXPECT_THROW(ScalabilityAnalyzer(inference_model, 4), InvalidArgument);
}

}  // namespace
}  // namespace convmeter

namespace convmeter {
namespace {

TEST(StrongScalingTest, GlobalBatchStaysConstant) {
  const ConvMeter model =
      ConvMeter::fit_training(comm_bound_samples(1e-10, 5e-5));
  const ScalabilityAnalyzer analyzer(model, 4);
  const auto sweep =
      analyzer.strong_node_sweep(metrics_for(4e9, 2e7), 1024.0, 8);
  ASSERT_FALSE(sweep.empty());
  for (const auto& p : sweep) {
    EXPECT_NEAR(p.per_device_batch * p.num_nodes * 4, 1024.0, 1e-9);
  }
}

TEST(StrongScalingTest, StopsWhenShareFallsBelowOneImage) {
  const ConvMeter model =
      ConvMeter::fit_training(comm_bound_samples(1e-10, 5e-5));
  const ScalabilityAnalyzer analyzer(model, 4);
  // Global batch 32 over 4 GPUs/node: 2 nodes -> 4 img/GPU, 16 nodes would
  // be 0.5 img/GPU, so the sweep must stop at 8 nodes (1 img/GPU).
  const auto sweep =
      analyzer.strong_node_sweep(metrics_for(4e9, 2e7), 32.0, 64);
  ASSERT_FALSE(sweep.empty());
  EXPECT_EQ(sweep.back().num_nodes, 8);
}

TEST(StrongScalingTest, StepTimeShrinksWithNodes) {
  // With a fixed global batch, each node does less compute per step.
  const ConvMeter model =
      ConvMeter::fit_training(comm_bound_samples(1e-12, 1e-6));
  const ScalabilityAnalyzer analyzer(model, 4);
  const auto sweep =
      analyzer.strong_node_sweep(metrics_for(8e9, 1e6), 4096.0, 8);
  for (std::size_t i = 1; i < sweep.size(); ++i) {
    EXPECT_LT(sweep[i].step_seconds, sweep[i - 1].step_seconds);
  }
}

}  // namespace
}  // namespace convmeter
