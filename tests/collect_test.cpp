// Campaign and sample-persistence tests.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "backend/sim_backend.hpp"
#include "collect/campaign.hpp"
#include "collect/sample.hpp"
#include "models/zoo.hpp"

namespace convmeter {
namespace {

InferenceSweep tiny_inference_sweep() {
  InferenceSweep sweep;
  sweep.models = {"alexnet", "resnet18"};
  sweep.image_sizes = {64, 128};
  sweep.batch_sizes = {1, 16};
  sweep.repetitions = 2;
  return sweep;
}

TEST(InferenceCampaignTest, ProducesExpectedGrid) {
  SimInferenceBackend sim(a100_80gb());
  const auto samples = run_inference_campaign(sim, tiny_inference_sweep());
  // 2 models x 2 images x 2 batches x 2 reps, everything fits in memory.
  EXPECT_EQ(samples.size(), 16u);
  for (const auto& s : samples) {
    EXPECT_GT(s.t_infer, 0.0);
    EXPECT_GT(s.flops1, 0.0);
    EXPECT_EQ(s.num_devices, 1);
    EXPECT_EQ(s.device, "a100");
  }
}

TEST(InferenceCampaignTest, DeterministicForSeed) {
  SimInferenceBackend sim(a100_80gb());
  const auto a = run_inference_campaign(sim, tiny_inference_sweep());
  const auto b = run_inference_campaign(sim, tiny_inference_sweep());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].t_infer, b[i].t_infer);
  }
}

TEST(InferenceCampaignTest, SeedChangesMeasurements) {
  SimInferenceBackend sim(a100_80gb());
  auto sweep = tiny_inference_sweep();
  const auto a = run_inference_campaign(sim, sweep);
  sweep.seed = 999;
  const auto b = run_inference_campaign(sim, sweep);
  EXPECT_NE(a.front().t_infer, b.front().t_infer);
}

TEST(InferenceCampaignTest, VerifyOptionPreflightsEveryModel) {
  SimInferenceBackend sim(a100_80gb());
  CampaignOptions options;
  options.verify = true;
  // Every zoo graph verifies clean, so the pre-flight must not change the
  // sampled grid.
  const auto samples =
      run_inference_campaign(sim, tiny_inference_sweep(), options);
  EXPECT_EQ(samples.size(), 16u);
}

TEST(InferenceCampaignTest, SkipsInfeasibleResolutions) {
  SimInferenceBackend sim(a100_80gb());
  InferenceSweep sweep;
  sweep.models = {"alexnet"};   // stem collapses below ~63 px
  sweep.image_sizes = {32, 224};
  sweep.batch_sizes = {1};
  sweep.repetitions = 1;
  const auto samples = run_inference_campaign(sim, sweep);
  ASSERT_EQ(samples.size(), 1u);
  EXPECT_EQ(samples.front().image_size, 224);
}

TEST(InferenceCampaignTest, SkipsOverMemoryBatches) {
  SimInferenceBackend sim(a100_80gb());
  InferenceSweep sweep;
  sweep.models = {"vgg16"};
  sweep.image_sizes = {224};
  sweep.batch_sizes = {1, 1 << 20};  // absurd batch cannot fit in 80 GB
  sweep.repetitions = 1;
  const auto samples = run_inference_campaign(sim, sweep);
  ASSERT_EQ(samples.size(), 1u);
  EXPECT_EQ(samples.front().global_batch, 1);
}

TEST(TrainingCampaignTest, RecordsPhaseTimesAndTopology) {
  SimTrainingBackend sim(a100_80gb(), nvlink_hdr200_fabric());
  TrainingSweep sweep;
  sweep.models = {"resnet18"};
  sweep.image_sizes = {64};
  sweep.per_device_batch_sizes = {16};
  sweep.node_counts = {1, 2};
  sweep.devices_per_node = 4;
  sweep.repetitions = 1;
  const auto samples = run_training_campaign(sim, sweep);
  ASSERT_EQ(samples.size(), 2u);
  for (const auto& s : samples) {
    EXPECT_GT(s.t_fwd, 0.0);
    EXPECT_GT(s.t_bwd, 0.0);
    EXPECT_GT(s.t_grad, 0.0);
    EXPECT_NEAR(s.t_step, s.t_fwd + s.t_bwd + s.t_grad, 1e-12);
    EXPECT_EQ(s.num_devices, s.num_nodes * 4);
    EXPECT_EQ(s.global_batch, 16 * s.num_devices);
    EXPECT_DOUBLE_EQ(s.mini_batch(), 16.0);
  }
}

TEST(TrainingCampaignTest, PaperSweepsPopulated) {
  const auto single = TrainingSweep::paper_single_gpu({"resnet18"});
  EXPECT_EQ(single.node_counts, std::vector<int>{1});
  EXPECT_EQ(single.devices_per_node, 1);
  const auto dist = TrainingSweep::paper_distributed({"resnet18"});
  EXPECT_EQ(dist.devices_per_node, 4);
  EXPECT_GT(dist.node_counts.size(), 3u);
}

TEST(BlockCampaignTest, SweepsBatchSizes) {
  SimInferenceBackend sim(a100_80gb());
  Graph g("block");
  NodeId x = g.input(64);
  g.conv2d("c", x, Conv2dAttrs::square(64, 64, 3, 1, 1));
  std::vector<BlockCase> blocks;
  blocks.push_back({"TestBlock", std::move(g), Shape::nchw(1, 64, 28, 28)});
  const auto samples = run_block_campaign(sim, blocks, {1, 8, 32}, 2, 42);
  EXPECT_EQ(samples.size(), 6u);
  for (const auto& s : samples) {
    EXPECT_EQ(s.model, "TestBlock");
    EXPECT_GT(s.t_infer, 0.0);
  }
}

TEST(SampleCsvTest, RoundTripPreservesEverything) {
  RuntimeSample s;
  s.model = "resnet50";
  s.device = "a100";
  s.image_size = 224;
  s.global_batch = 256;
  s.num_devices = 8;
  s.num_nodes = 2;
  s.flops1 = 8.2e9;
  s.inputs1 = 1.07e7;
  s.outputs1 = 1.11e7;
  s.weights = 2.55e7;
  s.layers = 161.0;
  s.t_fwd = 0.0123;
  s.t_bwd = 0.0246;
  s.t_grad = 0.003;
  s.t_step = 0.0399;

  const auto back = samples_from_csv(samples_to_csv({s}));
  ASSERT_EQ(back.size(), 1u);
  EXPECT_EQ(back[0].model, s.model);
  EXPECT_EQ(back[0].device, s.device);
  EXPECT_EQ(back[0].image_size, s.image_size);
  EXPECT_EQ(back[0].global_batch, s.global_batch);
  EXPECT_EQ(back[0].num_devices, s.num_devices);
  EXPECT_EQ(back[0].num_nodes, s.num_nodes);
  EXPECT_DOUBLE_EQ(back[0].flops1, s.flops1);
  EXPECT_DOUBLE_EQ(back[0].t_step, s.t_step);
  EXPECT_DOUBLE_EQ(back[0].mini_batch(), 32.0);
}

TEST(SampleCsvTest, FileRoundTrip) {
  SimInferenceBackend sim(a100_80gb());
  const auto samples = run_inference_campaign(sim, tiny_inference_sweep());
  const std::string path = ::testing::TempDir() + "/samples.csv";
  save_samples(samples, path);
  const auto back = load_samples(path);
  ASSERT_EQ(back.size(), samples.size());
  for (std::size_t i = 0; i < samples.size(); ++i) {
    EXPECT_DOUBLE_EQ(back[i].t_infer, samples[i].t_infer);
    EXPECT_EQ(back[i].model, samples[i].model);
  }
}

TEST(CampaignTest, EmptyModelListRejected) {
  SimInferenceBackend sim(a100_80gb());
  EXPECT_THROW(run_inference_campaign(sim, InferenceSweep{}), InvalidArgument);
  SimTrainingBackend tsim(a100_80gb(), nvlink_hdr200_fabric());
  EXPECT_THROW(run_training_campaign(tsim, TrainingSweep{}), InvalidArgument);
}

}  // namespace
}  // namespace convmeter

#include "core/convmeter.hpp"

namespace convmeter {
namespace {

TEST(CsvFitRoundTripTest, FitFromCsvEqualsInMemoryFit) {
  // The CLI path (campaign -> CSV -> fit) must be equivalent to fitting
  // the in-memory samples directly.
  SimInferenceBackend sim(a100_80gb());
  InferenceSweep sweep;
  sweep.models = {"alexnet", "resnet18", "resnet50"};
  sweep.image_sizes = {64, 128};
  sweep.batch_sizes = {1, 16, 64};
  const auto samples = run_inference_campaign(sim, sweep);

  const std::string path = ::testing::TempDir() + "/fit_roundtrip.csv";
  save_samples(samples, path);
  const ConvMeter direct = ConvMeter::fit_inference(samples);
  const ConvMeter via_csv = ConvMeter::fit_inference(load_samples(path));

  QueryPoint q;
  q.metrics_b1.flops = 2e9;
  q.metrics_b1.conv_inputs = 4e6;
  q.metrics_b1.conv_outputs = 5e6;
  q.per_device_batch = 32;
  EXPECT_NEAR(direct.predict_inference(q), via_csv.predict_inference(q),
              1e-12);
}

}  // namespace
}  // namespace convmeter

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <set>

#include "collect/store/store.hpp"

namespace convmeter {
namespace {

std::string file_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

InferenceSweep sharded_sweep() {
  InferenceSweep sweep;
  sweep.models = {"alexnet", "resnet18", "squeezenet1_1"};
  sweep.image_sizes = {64};
  sweep.batch_sizes = {1, 16};
  sweep.repetitions = 2;
  return sweep;
}

void run_to_shard(const std::string& path, int shard_index, int shard_count,
                  int jobs = 1) {
  SimInferenceBackend sim(a100_80gb());
  ShardWriter writer(path);
  ShardSampleSink sink(writer);
  CampaignOptions options;
  options.sink = &sink;
  options.collect = false;
  options.jobs = jobs;
  options.shard_index = shard_index;
  options.shard_count = shard_count;
  run_inference_campaign(sim, sharded_sweep(), options);
  writer.flush();
}

TEST(ShardedCampaignTest, MergedShardsAreBitIdenticalToUnsharded) {
  const std::string whole = ::testing::TempDir() + "/campaign_whole.cms";
  const std::string s0 = ::testing::TempDir() + "/campaign_s0.cms";
  const std::string s1 = ::testing::TempDir() + "/campaign_s1.cms";
  const std::string s2 = ::testing::TempDir() + "/campaign_s2.cms";
  const std::string merged = ::testing::TempDir() + "/campaign_merged.cms";
  run_to_shard(whole, 0, 1);
  run_to_shard(s0, 0, 3);
  run_to_shard(s1, 1, 3);
  run_to_shard(s2, 2, 3);
  merge_shards({s2, s0, s1}, merged);
  EXPECT_EQ(file_bytes(whole), file_bytes(merged))
      << "independent --shard i/N runs must merge into the exact bytes of "
         "the unsharded campaign";
}

TEST(ShardedCampaignTest, ParallelJobsDoNotChangeShardBytes) {
  // Per-point seeding is derived from the global point index, so the
  // parallel schedule cannot leak into the measurements.
  const std::string serial = ::testing::TempDir() + "/campaign_serial.cms";
  const std::string parallel = ::testing::TempDir() + "/campaign_par.cms";
  run_to_shard(serial, 0, 1, /*jobs=*/1);
  run_to_shard(parallel, 0, 1, /*jobs=*/4);
  EXPECT_EQ(file_bytes(serial), file_bytes(parallel));
}

TEST(ShardedCampaignTest, ShardsPartitionThePointGrid) {
  SimInferenceBackend sim(a100_80gb());
  const auto whole = run_inference_campaign(sim, sharded_sweep());
  std::vector<RuntimeSample> merged;
  for (int i = 0; i < 2; ++i) {
    CampaignOptions options;
    options.shard_index = i;
    options.shard_count = 2;
    const auto part = run_inference_campaign(sim, sharded_sweep(), options);
    merged.insert(merged.end(), part.begin(), part.end());
  }
  ASSERT_EQ(merged.size(), whole.size());
  // Same multiset of measurements: compare per (model,batch,rep) tuples.
  std::multiset<std::string> a;
  std::multiset<std::string> b;
  for (const auto& s : whole) {
    a.insert(s.model + "/" + std::to_string(s.global_batch) + "/" +
             std::to_string(s.t_infer));
  }
  for (const auto& s : merged) {
    b.insert(s.model + "/" + std::to_string(s.global_batch) + "/" +
             std::to_string(s.t_infer));
  }
  EXPECT_EQ(a, b);
}

TEST(ShardedCampaignTest, InvalidShardSpecRejected) {
  SimInferenceBackend sim(a100_80gb());
  CampaignOptions options;
  options.shard_index = 2;
  options.shard_count = 2;
  EXPECT_THROW(run_inference_campaign(sim, sharded_sweep(), options),
               InvalidArgument);
  options.shard_index = 0;
  options.shard_count = 0;
  EXPECT_THROW(run_inference_campaign(sim, sharded_sweep(), options),
               InvalidArgument);
}

TEST(ShardSampleSinkTest, PlainEmitRefusesToDropTheMergeKey) {
  const std::string path = ::testing::TempDir() + "/sink_plain_emit.cms";
  ShardWriter writer(path);
  ShardSampleSink sink(writer);
  EXPECT_THROW(sink.emit(RuntimeSample{}), InvalidArgument);
}

TEST(CheckpointTest, AbortedCampaignResumesBitIdentically) {
  const std::string clean = ::testing::TempDir() + "/ck_clean.cms";
  const std::string out = ::testing::TempDir() + "/ck_out.cms";
  const std::string journal = ::testing::TempDir() + "/ck_journal.cms";
  std::filesystem::remove(journal);
  run_to_shard(clean, 0, 1);

  SimInferenceBackend sim(a100_80gb());
  {
    // First attempt dies after one checkpoint flush (test hook).
    ShardWriter writer(out);
    ShardSampleSink sink(writer);
    CampaignOptions options;
    options.sink = &sink;
    options.collect = false;
    options.checkpoint = journal;
    options.checkpoint_interval = 2;
    options.abort_after_flushes = 1;
    EXPECT_THROW(run_inference_campaign(sim, sharded_sweep(), options),
                 CampaignAborted);
  }
  const std::uint64_t durable = shard_record_count(journal);
  EXPECT_GT(durable, 0u);
  EXPECT_LT(durable, shard_record_count(clean));
  {
    // Resume re-emits the journal's records and continues where it left
    // off, so the sink output matches an uninterrupted run exactly.
    ShardWriter writer(out);
    ShardSampleSink sink(writer);
    CampaignOptions options;
    options.sink = &sink;
    options.collect = false;
    options.checkpoint = journal;
    options.checkpoint_interval = 2;
    options.resume = true;
    run_inference_campaign(sim, sharded_sweep(), options);
    writer.flush();
  }
  EXPECT_EQ(file_bytes(clean), file_bytes(out));
  std::filesystem::remove(journal);
}

TEST(CheckpointTest, ResumeOfCompleteJournalEmitsEverything) {
  const std::string clean = ::testing::TempDir() + "/ck2_clean.cms";
  const std::string out = ::testing::TempDir() + "/ck2_out.cms";
  const std::string journal = ::testing::TempDir() + "/ck2_journal.cms";
  std::filesystem::remove(journal);
  run_to_shard(clean, 0, 1);

  SimInferenceBackend sim(a100_80gb());
  for (int attempt = 0; attempt < 2; ++attempt) {
    // First pass completes and fills the journal; the second pass finds
    // nothing left to measure and replays the journal into the sink.
    ShardWriter writer(out);
    ShardSampleSink sink(writer);
    CampaignOptions options;
    options.sink = &sink;
    options.collect = false;
    options.checkpoint = journal;
    options.resume = attempt > 0;
    run_inference_campaign(sim, sharded_sweep(), options);
    writer.flush();
    EXPECT_EQ(file_bytes(clean), file_bytes(out));
  }
  std::filesystem::remove(journal);
}

}  // namespace
}  // namespace convmeter
