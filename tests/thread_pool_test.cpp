// ThreadPool tests: coverage of the range split, determinism of results,
// exception propagation, and degenerate sizes.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <thread>
#include <vector>

#include "exec/thread_pool.hpp"

namespace convmeter {
namespace {

TEST(ThreadPoolTest, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(1000, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) hits[i].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ZeroCountIsNoop) {
  ThreadPool pool(2);
  bool called = false;
  pool.parallel_for(0, [&](std::size_t, std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPoolTest, SingleElement) {
  ThreadPool pool(4);
  int sum = 0;
  pool.parallel_for(1, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) sum += static_cast<int>(i) + 5;
  });
  EXPECT_EQ(sum, 5);
}

TEST(ThreadPoolTest, SingleThreadPoolWorks) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.num_threads(), 1u);
  std::vector<int> hits(64, 0);
  pool.parallel_for(64, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) ++hits[i];
  });
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 64);
}

TEST(ThreadPoolTest, MoreThreadsThanWork) {
  ThreadPool pool(8);
  std::vector<std::atomic<int>> hits(3);
  pool.parallel_for(3, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) hits[i].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ExceptionsPropagateToCaller) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_for(100,
                                 [&](std::size_t b, std::size_t) {
                                   if (b == 0) throw std::runtime_error("boom");
                                 }),
               std::runtime_error);
}

TEST(ThreadPoolTest, ReusableAcrossCalls) {
  ThreadPool pool(3);
  for (int round = 0; round < 20; ++round) {
    std::atomic<std::size_t> total{0};
    pool.parallel_for(257, [&](std::size_t b, std::size_t e) {
      total.fetch_add(e - b);
    });
    EXPECT_EQ(total.load(), 257u);
  }
}

TEST(ThreadPoolTest, UsableAfterException) {
  ThreadPool pool(2);
  try {
    pool.parallel_for(10, [](std::size_t, std::size_t) {
      throw std::runtime_error("first");
    });
  } catch (const std::runtime_error&) {
  }
  std::atomic<std::size_t> total{0};
  pool.parallel_for(10, [&](std::size_t b, std::size_t e) {
    total.fetch_add(e - b);
  });
  EXPECT_EQ(total.load(), 10u);
}

TEST(ThreadPoolTest, DefaultUsesHardwareConcurrency) {
  ThreadPool pool;
  EXPECT_GE(pool.num_threads(), 1u);
}

TEST(ThreadPoolTest, GrainRunsSmallRangeInlineInOneChunk) {
  ThreadPool pool(4);
  const std::thread::id caller = std::this_thread::get_id();
  std::atomic<int> calls{0};
  std::thread::id body_thread;
  pool.parallel_for(
      100,
      [&](std::size_t b, std::size_t e) {
        calls.fetch_add(1);
        body_thread = std::this_thread::get_id();
        EXPECT_EQ(b, 0u);
        EXPECT_EQ(e, 100u);
      },
      /*grain=*/100);
  EXPECT_EQ(calls.load(), 1);
  EXPECT_EQ(body_thread, caller);
}

TEST(ThreadPoolTest, GrainStillCoversEveryIndexWhenSplit) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(
      1000,
      [&](std::size_t b, std::size_t e) {
        for (std::size_t i = b; i < e; ++i) hits[i].fetch_add(1);
      },
      /*grain=*/64);
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ChunkSizeRespectsGrainAndCoversCount) {
  // Chunks are never smaller than the grain...
  EXPECT_GE(ThreadPool::chunk_size(1000, 4, 300), 300u);
  // ...and threads * chunk always covers the full range.
  for (std::size_t count : {1u, 7u, 256u, 1000u}) {
    for (std::size_t threads : {1u, 2u, 4u, 7u}) {
      for (std::size_t grain : {1u, 16u, 999u}) {
        const std::size_t chunk = ThreadPool::chunk_size(count, threads, grain);
        EXPECT_GE(chunk * threads, count)
            << count << "/" << threads << "/" << grain;
      }
    }
  }
}

}  // namespace
}  // namespace convmeter
