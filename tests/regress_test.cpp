// Regression-layer tests: LinearModel fit/predict/serialize, error metrics
// against hand-computed values, leave-one-group-out mechanics.
#include <gtest/gtest.h>

#include <array>
#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "regress/error_metrics.hpp"
#include "regress/incremental_ls.hpp"
#include "regress/linear_model.hpp"
#include "regress/loo.hpp"

namespace convmeter {
namespace {

Matrix make_design(const std::vector<Vector>& rows) {
  Matrix x(rows.size(), rows.front().size());
  for (std::size_t r = 0; r < rows.size(); ++r) {
    for (std::size_t c = 0; c < rows[r].size(); ++c) x(r, c) = rows[r][c];
  }
  return x;
}

TEST(LinearModelTest, FitsExactLine) {
  const Matrix x = make_design({{0.0, 1.0}, {1.0, 1.0}, {2.0, 1.0}});
  const LinearModel m = LinearModel::fit(x, {1.0, 3.0, 5.0});
  EXPECT_NEAR(m.coefficients()[0], 2.0, 1e-9);
  EXPECT_NEAR(m.coefficients()[1], 1.0, 1e-9);
  EXPECT_NEAR(m.predict({10.0, 1.0}), 21.0, 1e-8);
}

TEST(LinearModelTest, HandlesWildFeatureScales) {
  // FLOPs-like (1e9) next to a constant column — the conditioning case the
  // internal column scaling exists for.
  Rng rng(3);
  constexpr std::size_t n = 64;
  Matrix x(n, 2);
  Vector y(n);
  for (std::size_t r = 0; r < n; ++r) {
    x(r, 0) = rng.uniform(1e8, 5e10);
    x(r, 1) = 1.0;
    y[r] = 3e-12 * x(r, 0) + 0.25;
  }
  const LinearModel m = LinearModel::fit(x, y);
  EXPECT_NEAR(m.coefficients()[0], 3e-12, 1e-15);
  EXPECT_NEAR(m.coefficients()[1], 0.25, 1e-6);
}

TEST(LinearModelTest, FallsBackToRidgeOnRankDeficiency) {
  // Constant duplicate columns would break plain QR.
  const Matrix x = make_design({{1.0, 1.0}, {1.0, 1.0}, {1.0, 1.0}});
  const LinearModel m = LinearModel::fit(x, {2.0, 2.0, 2.0});
  EXPECT_NEAR(m.predict({1.0, 1.0}), 2.0, 1e-3);
}

TEST(LinearModelTest, PredictAllMatchesPredict) {
  const Matrix x = make_design({{1.0, 1.0}, {2.0, 1.0}, {5.0, 1.0}});
  const LinearModel m = LinearModel::fit(x, {3.0, 5.0, 11.0});
  const Vector all = m.predict_all(x);
  for (std::size_t r = 0; r < 3; ++r) {
    EXPECT_NEAR(all[r], m.predict({x(r, 0), x(r, 1)}), 1e-12);
  }
}

TEST(LinearModelTest, SerializationRoundTrip) {
  const Matrix x = make_design({{0.0, 1.0}, {1.0, 1.0}, {2.0, 1.0}});
  const LinearModel m = LinearModel::fit(x, {1.0, 3.0, 5.0});
  const LinearModel back = LinearModel::from_text(m.to_text());
  ASSERT_EQ(back.coefficients().size(), m.coefficients().size());
  for (std::size_t i = 0; i < m.coefficients().size(); ++i) {
    EXPECT_DOUBLE_EQ(back.coefficients()[i], m.coefficients()[i]);
  }
}

TEST(LinearModelTest, MalformedTextThrows) {
  EXPECT_THROW(LinearModel::from_text("nonsense"), ParseError);
  EXPECT_THROW(LinearModel::from_text("linear_model 3 1.0 2.0"), ParseError);
}

TEST(LinearModelTest, PredictWidthChecked) {
  const Matrix x = make_design({{0.0, 1.0}, {1.0, 1.0}});
  const LinearModel m = LinearModel::fit(x, {1.0, 2.0});
  EXPECT_THROW(m.predict({1.0}), InvalidArgument);
}

TEST(ErrorMetricsTest, PerfectPrediction) {
  const std::vector<double> y = {1.0, 2.0, 3.0};
  const ErrorReport r = compute_errors(y, y);
  EXPECT_DOUBLE_EQ(r.r2, 1.0);
  EXPECT_DOUBLE_EQ(r.rmse, 0.0);
  EXPECT_DOUBLE_EQ(r.nrmse, 0.0);
  EXPECT_DOUBLE_EQ(r.mape, 0.0);
}

TEST(ErrorMetricsTest, HandComputedValues) {
  const std::vector<double> pred = {1.0, 2.0};
  const std::vector<double> meas = {2.0, 4.0};
  const ErrorReport r = compute_errors(pred, meas);
  // errors: 1, 2 -> rmse = sqrt(2.5); range = 2 -> nrmse = rmse/2.
  EXPECT_NEAR(r.rmse, std::sqrt(2.5), 1e-12);
  EXPECT_NEAR(r.nrmse, std::sqrt(2.5) / 2.0, 1e-12);
  // mape = mean(1/2, 2/4) = 0.5.
  EXPECT_NEAR(r.mape, 0.5, 1e-12);
  // ss_res = 5; mean = 3; ss_tot = 2 -> r2 = 1 - 2.5.
  EXPECT_NEAR(r.r2, 1.0 - 5.0 / 2.0, 1e-12);
}

TEST(ErrorMetricsTest, ZeroMeasurementsExcludedFromMape) {
  const ErrorReport r = compute_errors({1.0, 1.0}, {0.0, 2.0});
  EXPECT_NEAR(r.mape, 0.5, 1e-12);
}

TEST(ErrorMetricsTest, ConstantTargetsGiveZeroR2NotNan) {
  const ErrorReport r = compute_errors({1.0, 2.0}, {3.0, 3.0});
  EXPECT_DOUBLE_EQ(r.r2, 0.0);
  EXPECT_DOUBLE_EQ(r.nrmse, 0.0);
  EXPECT_FALSE(std::isnan(r.rmse));
}

TEST(ErrorMetricsTest, Validation) {
  EXPECT_THROW(compute_errors({1.0}, {1.0, 2.0}), InvalidArgument);
  EXPECT_THROW(compute_errors({1.0}, {1.0}), InvalidArgument);
}

TEST(LooTest, HoldsOutEachGroup) {
  // Two groups on the same exact line: held-out predictions are exact.
  Matrix x = make_design(
      {{1.0, 1.0}, {2.0, 1.0}, {3.0, 1.0}, {4.0, 1.0}, {5.0, 1.0}, {6.0, 1.0}});
  Vector y(6);
  for (std::size_t i = 0; i < 6; ++i) y[i] = 2.0 * x(i, 0) + 1.0;
  const std::vector<std::string> groups = {"a", "a", "a", "b", "b", "b"};
  const LooResult r = leave_one_group_out(x, y, groups);
  ASSERT_EQ(r.per_group.size(), 2u);
  EXPECT_EQ(r.per_group[0].group, "a");
  EXPECT_EQ(r.per_group[1].group, "b");
  EXPECT_NEAR(r.pooled.rmse, 0.0, 1e-9);
  EXPECT_NEAR(r.per_group[0].errors.mape, 0.0, 1e-9);
}

TEST(LooTest, GroupModelExcludesOwnData) {
  // Group "b" lies far off group "a"'s line; its held-out error must be
  // large even though a joint fit could absorb it.
  Matrix x = make_design({{1.0, 1.0},
                          {2.0, 1.0},
                          {3.0, 1.0},
                          {1.0, 1.0},
                          {2.0, 1.0},
                          {3.0, 1.0}});
  Vector y = {2.0, 4.0, 6.0, 20.0, 40.0, 60.0};
  const std::vector<std::string> groups = {"a", "a", "a", "b", "b", "b"};
  const LooResult r = leave_one_group_out(x, y, groups);
  const auto& b = r.per_group[1];
  ASSERT_EQ(b.group, "b");
  EXPECT_GT(b.errors.mape, 0.5);
}

TEST(LooTest, RequiresTwoGroups) {
  Matrix x = make_design({{1.0}, {2.0}});
  EXPECT_THROW(leave_one_group_out(x, {1.0, 2.0}, {"a", "a"}),
               InvalidArgument);
}

TEST(LooTest, SizeMismatchThrows) {
  Matrix x = make_design({{1.0}, {2.0}});
  EXPECT_THROW(leave_one_group_out(x, {1.0}, {"a", "b"}), InvalidArgument);
}

TEST(LooTest, PooledCountsAllSamples) {
  Matrix x = make_design({{1.0, 1.0}, {2.0, 1.0}, {3.0, 1.0}, {4.0, 1.0}});
  Vector y = {1.0, 2.0, 3.0, 4.0};
  const std::vector<std::string> groups = {"a", "a", "b", "b"};
  const LooResult r = leave_one_group_out(x, y, groups);
  EXPECT_EQ(r.pooled.count, 4u);
}

TEST(LooTest, SingleSampleGroupContributesToPooledOnly) {
  // Group "c" holds exactly one sample: per-group error metrics need at
  // least two points, so it must not appear in per_group (it used to show
  // up as an all-zero report), but its prediction still counts pooled.
  Matrix x = make_design({{1.0, 1.0},
                          {2.0, 1.0},
                          {3.0, 1.0},
                          {4.0, 1.0},
                          {5.0, 1.0}});
  Vector y(5);
  for (std::size_t i = 0; i < 5; ++i) y[i] = 3.0 * x(i, 0) - 1.0;
  const std::vector<std::string> groups = {"a", "a", "b", "b", "c"};
  const LooResult r = leave_one_group_out(x, y, groups);
  ASSERT_EQ(r.per_group.size(), 2u);
  EXPECT_EQ(r.per_group[0].group, "a");
  EXPECT_EQ(r.per_group[1].group, "b");
  EXPECT_EQ(r.pooled.count, 5u);  // the lone "c" sample is still scored
  EXPECT_NEAR(r.pooled.rmse, 0.0, 1e-9);
}


// ---------------------------------------------------------------------------
// Streaming least squares (regress/incremental_ls.hpp): the exactness
// guarantees the sharded fit pipeline rests on.

TEST(ExactSumTest, SurvivesCatastrophicCancellation) {
  ExactSum sum;
  sum.add(1e16);
  sum.add(1.0);
  sum.add(-1e16);
  EXPECT_EQ(sum.value(), 1.0);  // naive double += loses the 1.0
}

TEST(ExactSumTest, OrderIndependentAcrossMagnitudes) {
  Rng rng(7);
  std::vector<double> values;
  for (int i = 0; i < 1000; ++i) {
    values.push_back(rng.uniform(-1.0, 1.0) * std::pow(10.0, rng.uniform(-12.0, 12.0)));
  }
  ExactSum forward;
  for (const double v : values) forward.add(v);
  ExactSum backward;
  for (auto it = values.rbegin(); it != values.rend(); ++it) backward.add(*it);
  EXPECT_TRUE(forward == backward);
  EXPECT_EQ(forward.value(), backward.value());
}

TEST(ExactSumTest, MergeEqualsSingleStreamAndSubtractInverts) {
  Rng rng(11);
  std::vector<double> values;
  for (int i = 0; i < 200; ++i) values.push_back(rng.uniform(-1e6, 1e6));

  ExactSum all;
  for (const double v : values) all.add(v);
  ExactSum front;
  ExactSum back;
  for (std::size_t i = 0; i < values.size(); ++i) {
    (i < 100 ? front : back).add(values[i]);
  }
  ExactSum merged = front;
  merged.add(back);
  EXPECT_TRUE(merged == all);

  merged.subtract(back);
  EXPECT_TRUE(merged == front);
}

namespace {

/// Random wild-scale design in the shape the fit pipeline sees: a FLOPs-like
/// column, a moderate column, and an intercept.
void make_wild_system(Rng& rng, std::size_t n, Matrix* x, Vector* y) {
  *x = Matrix(n, 3);
  y->assign(n, 0.0);
  for (std::size_t r = 0; r < n; ++r) {
    (*x)(r, 0) = rng.uniform(1e8, 5e10);
    (*x)(r, 1) = rng.uniform(0.5, 64.0);
    (*x)(r, 2) = 1.0;
    (*y)[r] = 3e-12 * (*x)(r, 0) + 2e-3 * (*x)(r, 1) + 0.25 +
              rng.uniform(-1e-4, 1e-4);
  }
}

}  // namespace

TEST(IncrementalLSTest, MatchesBatchLeastSquares) {
  Rng rng(13);
  Matrix x;
  Vector y;
  make_wild_system(rng, 96, &x, &y);

  const Vector batch = solve_least_squares(x, y);
  IncrementalLS acc(3);
  for (std::size_t r = 0; r < x.rows(); ++r) {
    acc.observe({x(r, 0), x(r, 1), x(r, 2)}, y[r]);
  }
  const Vector streamed = acc.solve();
  ASSERT_EQ(streamed.size(), batch.size());
  for (std::size_t c = 0; c < batch.size(); ++c) {
    EXPECT_NEAR(streamed[c], batch[c], 1e-10 * std::abs(batch[c]))
        << "coefficient " << c;
  }
}

TEST(IncrementalLSTest, ShardMergeIsBitIdenticalToSingleStream) {
  Rng rng(17);
  Matrix x;
  Vector y;
  make_wild_system(rng, 90, &x, &y);

  IncrementalLS single(3);
  for (std::size_t r = 0; r < x.rows(); ++r) {
    single.observe({x(r, 0), x(r, 1), x(r, 2)}, y[r]);
  }

  // Three shards, round-robin split — a different accumulation order than
  // the single stream — then merged out of order.
  std::array<IncrementalLS, 3> shards{IncrementalLS(3), IncrementalLS(3),
                                      IncrementalLS(3)};
  for (std::size_t r = 0; r < x.rows(); ++r) {
    shards[r % 3].observe({x(r, 0), x(r, 1), x(r, 2)}, y[r]);
  }
  IncrementalLS merged(3);
  merged.merge(shards[2]);
  merged.merge(shards[0]);
  merged.merge(shards[1]);

  EXPECT_TRUE(merged == single);
  const Vector a = merged.solve();
  const Vector b = single.solve();
  for (std::size_t c = 0; c < a.size(); ++c) {
    EXPECT_EQ(a[c], b[c]) << "solve must be bit-identical, coefficient " << c;
  }
}

TEST(IncrementalLSTest, SubtractYieldsExactComplement) {
  Rng rng(19);
  Matrix x;
  Vector y;
  make_wild_system(rng, 60, &x, &y);

  IncrementalLS global(3);
  IncrementalLS group(3);
  IncrementalLS complement(3);
  for (std::size_t r = 0; r < x.rows(); ++r) {
    const Vector row = {x(r, 0), x(r, 1), x(r, 2)};
    global.observe(row, y[r]);
    (r % 4 == 0 ? group : complement).observe(row, y[r]);
  }
  IncrementalLS loo = global;
  loo.subtract(group);
  EXPECT_EQ(loo.count(), complement.count());
  // Statistics are exactly the complement's; solve() agrees to the last bit
  // modulo the conditioning-only max-abs scales kept from the union.
  const Vector a = loo.solve();
  const Vector b = complement.solve();
  for (std::size_t c = 0; c < a.size(); ++c) {
    EXPECT_NEAR(a[c], b[c], 1e-12 * std::max(1.0, std::abs(b[c])));
  }
}

TEST(IncrementalLSTest, RankDeficientFallsBackToRidge) {
  IncrementalLS acc(2);
  for (int i = 0; i < 8; ++i) acc.observe({1.0, 1.0}, 2.0);
  const Vector beta = acc.solve();
  EXPECT_NEAR(beta[0] + beta[1], 2.0, 1e-3);
}

TEST(IncrementalLSTest, RejectsMismatchedShapes) {
  IncrementalLS a(2);
  IncrementalLS b(3);
  EXPECT_THROW(a.merge(b), InvalidArgument);
  EXPECT_THROW(a.observe({1.0, 2.0, 3.0}, 1.0), InvalidArgument);
  EXPECT_THROW(a.solve(), InvalidArgument);  // count() < cols()
}

}  // namespace
}  // namespace convmeter
