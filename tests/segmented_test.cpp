// Segmented (per-op-family) predictor: feature derivation, model gating,
// exact shard merge/subtract, and the headline property — on a mixed
// CNN + ViT corpus whose per-family costs differ, the segmented model's
// LOO error beats the whole-net linear baseline, which must average one
// price over kernels with different costs.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "collect/graph_cache.hpp"
#include "metrics/metrics.hpp"
#include "predict/evaluate.hpp"
#include "predict/registry.hpp"
#include "predict/segmented.hpp"

namespace convmeter {
namespace {

/// Per-family prices (seconds per FLOP / per element): attention and norm
/// work priced far off the conv/gemm rate, so no single whole-net
/// coefficient can fit both ConvNets and ViTs.
constexpr double kFlopPrice[kNumOpFamilies] = {1e-12, 1.5e-12, 8e-12, 2e-12,
                                               0.5e-12};
constexpr double kIoPrice[kNumOpFamilies] = {2e-10, 1e-10, 4e-10, 6e-10,
                                             3e-10};
constexpr double kIntercept = 5e-4;

double planted_time(const std::string& model, std::int64_t image, double b) {
  const auto m = GraphCache::instance().metrics_b1(model, image);
  double t = kIntercept;
  for (std::size_t f = 0; f < kNumOpFamilies; ++f) {
    t += b * m->families[f].flops * kFlopPrice[f];
    t += b * m->families[f].io_elems * kIoPrice[f];
  }
  return t;
}

/// Mixed corpus: ConvNets, ViTs and a Mixer over several image sizes and
/// batch sizes, with t_infer planted from the per-family prices. The image
/// sweep varies each model's family mix (attention work grows
/// quadratically in the token count), so every LOO fold sees a full-rank
/// design. The Mixer is resolution-pinned to 224; infeasible (model,
/// image) pairs are simply not emitted.
std::vector<RuntimeSample> mixed_corpus() {
  std::vector<RuntimeSample> samples;
  for (const char* model :
       {"alexnet", "resnet18", "squeezenet1_1", "mobilenet_v2", "vit_ti_16",
        "vit_s_16", "mlp_mixer_s_16"}) {
    for (const std::int64_t image : {160, 192, 224}) {
      const auto m = GraphCache::instance().metrics_b1(model, image);
      if (!m.has_value()) continue;
      for (const double batch : {1.0, 2.0, 4.0, 8.0, 16.0}) {
        RuntimeSample s;
        s.model = model;
        s.device = "synthetic";
        s.image_size = image;
        s.global_batch = static_cast<std::int64_t>(batch);
        s.flops1 = m->flops;
        s.inputs1 = m->compute_inputs;
        s.outputs1 = m->compute_outputs;
        s.weights = m->weights;
        s.layers = m->layers;
        s.t_infer = planted_time(model, image, batch);
        samples.push_back(s);
      }
    }
  }
  return samples;
}

TEST(SegmentedFeaturesTest, ZooModelYieldsElevenBatchScaledColumns) {
  RuntimeSample s;
  s.model = "resnet18";
  s.image_size = 224;
  s.global_batch = 4;
  const auto x1 = segmented_features(s);
  ASSERT_TRUE(x1.has_value());
  ASSERT_EQ(x1->size(), kSegmentedFeatureCount);
  EXPECT_EQ((*x1)[kSegmentedFeatureCount - 1], 1.0);  // intercept
  // Conv family dominates a ResNet; attention columns are zero.
  EXPECT_GT((*x1)[2 * static_cast<std::size_t>(OpFamily::kConv)], 0.0);
  EXPECT_EQ((*x1)[2 * static_cast<std::size_t>(OpFamily::kAttention)], 0.0);

  s.global_batch = 8;
  const auto x2 = segmented_features(s);
  ASSERT_TRUE(x2.has_value());
  for (std::size_t c = 0; c + 1 < kSegmentedFeatureCount; ++c) {
    EXPECT_DOUBLE_EQ((*x2)[c], 2.0 * (*x1)[c]) << "column " << c;
  }
}

TEST(SegmentedFeaturesTest, VitPopulatesAttentionAndNormColumns) {
  RuntimeSample s;
  s.model = "vit_ti_16";
  s.image_size = 224;
  s.global_batch = 1;
  const auto x = segmented_features(s);
  ASSERT_TRUE(x.has_value());
  EXPECT_GT((*x)[2 * static_cast<std::size_t>(OpFamily::kAttention)], 0.0);
  EXPECT_GT((*x)[2 * static_cast<std::size_t>(OpFamily::kNorm)], 0.0);
  EXPECT_GT((*x)[2 * static_cast<std::size_t>(OpFamily::kGemm)], 0.0);
}

TEST(SegmentedFeaturesTest, UnknownModelIsGatedOut) {
  RuntimeSample s;
  s.model = "not-a-zoo-model";
  s.image_size = 224;
  s.global_batch = 1;
  EXPECT_FALSE(segmented_features(s).has_value());
}

TEST(SegmentedPredictorTest, RecoversPlantedPerFamilyPrices) {
  const auto samples = mixed_corpus();
  const auto p = make_predictor("segmented");
  p->fit(samples);
  for (const RuntimeSample& s : samples) {
    EXPECT_NEAR(p->predict(s), s.t_infer, 1e-6 + 1e-4 * s.t_infer)
        << s.model << " b=" << s.global_batch;
  }
}

TEST(SegmentedPredictorTest, PredictRejectsNonZooModels) {
  const auto p = make_predictor("segmented");
  p->fit(mixed_corpus());
  RuntimeSample s;
  s.model = "mystery-net";
  s.image_size = 224;
  s.global_batch = 1;
  s.t_infer = 1.0;
  EXPECT_THROW(p->predict(s), InvalidArgument);
}

TEST(SegmentedPredictorTest, FitSkipsGatedSamplesInsteadOfAborting) {
  auto samples = mixed_corpus();
  RuntimeSample alien;
  alien.model = "mystery-net";
  alien.image_size = 224;
  alien.global_batch = 4;
  alien.t_infer = 123.0;  // would wreck the fit if it were folded in
  samples.insert(samples.begin(), alien);
  const auto gated = make_predictor("segmented");
  gated->fit(samples);
  const auto clean = make_predictor("segmented");
  clean->fit(mixed_corpus());
  EXPECT_DOUBLE_EQ(gated->predict(samples.back()),
                   clean->predict(samples.back()));
}

TEST(SegmentedAccumulatorTest, ShardMergeMatchesSingleStream) {
  const auto samples = mixed_corpus();
  SegmentedAccumulator whole;
  for (const auto& s : samples) whole.observe(s);

  SegmentedAccumulator left;
  SegmentedAccumulator right;
  for (std::size_t i = 0; i < samples.size(); ++i) {
    (i % 2 == 0 ? left : right).observe(samples[i]);
  }
  left.merge(right);
  ASSERT_EQ(left.count(), whole.count());
  const Vector a = left.solve().coefficients();
  const Vector b = whole.solve().coefficients();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i], b[i]) << "coefficient " << i;
  }

  // Subtracting a shard back out reproduces the complement's sums exactly;
  // the solve agrees to solver precision (subtract keeps the union's
  // column scales, which affect conditioning but not the solution).
  SegmentedAccumulator complement = whole;
  complement.subtract(right);
  SegmentedAccumulator direct;
  for (std::size_t i = 0; i < samples.size(); i += 2) {
    direct.observe(samples[i]);
  }
  ASSERT_EQ(complement.count(), direct.count());
  const LinearModel mc = complement.solve();
  const LinearModel md = direct.solve();
  for (const auto& s : samples) {
    const auto x = segmented_features(s);
    ASSERT_TRUE(x.has_value());
    const double pc = mc.predict(*x);
    const double pd = md.predict(*x);
    EXPECT_NEAR(pc, pd, 1e-4 * std::abs(pd)) << s.model;
  }
}

TEST(SegmentedLooTest, BeatsWholeNetLinearOnMixedCorpus) {
  const auto samples = mixed_corpus();
  const LooResult seg = evaluate_loo("segmented", samples);
  const LooResult lin = evaluate_loo("convmeter-fwd-only", samples);
  ASSERT_GT(seg.pooled.count, 0u);
  ASSERT_GT(lin.pooled.count, 0u);
  EXPECT_EQ(seg.skipped, 0u);
  // The planted corpus prices attention FLOPs ~8x conv FLOPs; a single
  // whole-net coefficient cannot fit both populations.
  EXPECT_LT(seg.pooled.mape, lin.pooled.mape);
  EXPECT_LT(seg.pooled.mape, 0.05);
}

}  // namespace
}  // namespace convmeter
