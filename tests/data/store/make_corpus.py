#!/usr/bin/env python3
"""Regenerates the adversarial shard corpus in this directory.

Each file is a ConvMeter binary sample shard (src/collect/store/format.hpp)
broken in exactly one way; store_test.cpp asserts that SampleReader rejects
every one with a clear ParseError instead of crashing or skipping records.

Layout mirrored here (little-endian host):
  header  64B: magic "CMSS", u32 version, u32 endian tag, u32 record_size,
               u64 record_count, 40B reserved
  record 200B: char model[48], char device[24], i64 image, i64 batch,
               i32 devices, i32 nodes, 11 doubles, u64 point_index,
               u32 repetition, u32 crc32(preceding bytes)
"""
import struct
import zlib
from pathlib import Path

HERE = Path(__file__).parent
HEADER = struct.Struct("<4sIII Q 40s")
RECORD = struct.Struct("<48s 24s qq ii 11d QI")  # crc appended separately

MAGIC = b"CMSS"
VERSION = 2
ENDIAN = 0x01020304
RECORD_SIZE = 200


def header(count, *, magic=MAGIC, version=VERSION, endian=ENDIAN,
           record_size=RECORD_SIZE):
    return HEADER.pack(magic, version, endian, record_size, count, b"\0" * 40)


def record(point_index, repetition):
    body = RECORD.pack(
        b"alexnet", b"corpus-device", 64, 16, 1, 1,
        1.0e9, 2.0e6, 3.0e6, 4.0e6, 8.0,
        0.0125, 0.004, 0.008, 0.002, 0.015, 5.0e6,
        point_index, repetition)
    return body + struct.pack("<I", zlib.crc32(body) & 0xFFFFFFFF)


def write(name, blob):
    (HERE / name).write_bytes(blob)
    print(f"wrote {name} ({len(blob)} bytes)")


records = record(0, 0) + record(0, 1) + record(1, 0)

# Reference shard every adversarial variant is derived from; store_test.cpp
# reads it successfully as the corpus sanity check.
write("valid.cms", header(3) + records)

# Header claims 3 records but the file ends mid-record.
write("truncated.cms", (header(3) + records)[: 64 + 2 * RECORD_SIZE + 17])

# One payload byte of record 1 flipped; its stored CRC no longer matches.
corrupt = bytearray(header(3) + records)
corrupt[64 + RECORD_SIZE + 100] ^= 0x40
write("bad_crc.cms", bytes(corrupt))

write("bad_version.cms", header(3, version=99) + records)
write("bad_endian.cms", header(3, endian=0x04030201) + records)
write("bad_magic.cms", header(3, magic=b"CMXX") + records)
write("bad_record_size.cms", header(3, record_size=100) + records)

# Valid header, zero records: fine for shard_record_count (a fresh
# checkpoint journal), rejected by SampleReader.
write("zero_records.cms", header(0))

# Record 2's model field has no NUL terminator anywhere in its 48 bytes
# (CRC recomputed so only the string check can fire).
unterminated_body = bytearray(record(1, 0)[:-4])
unterminated_body[0:48] = b"x" * 48
unterminated = unterminated_body + struct.pack(
    "<I", zlib.crc32(bytes(unterminated_body)) & 0xFFFFFFFF)
write("unterminated_string.cms",
      header(3) + record(0, 0) + record(0, 1) + bytes(unterminated))
