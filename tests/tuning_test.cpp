// Tuning-file envelope and kernel-determinism tests (PR 9).
//
// Two contracts are pinned here. First, the tuning file format: versioned
// envelope, foreign-device rejection, and bit-identical save -> load -> save
// round trips (same discipline as the predictor model files). Second, the
// determinism contract the tuning table enables: for a FIXED active table,
// GEMM, im2col convolution, and Winograd convolution produce byte-identical
// results at any thread count, and the Winograd path performs zero
// steady-state workspace allocations.
#include <gtest/gtest.h>

#include <cstdio>
#include <algorithm>
#include <cmath>
#include <cstring>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "exec/kernels.hpp"
#include "exec/thread_pool.hpp"
#include "exec/tuning/tuning.hpp"
#include "exec/workspace.hpp"
#include "graph/ops.hpp"
#include "tensor/tensor.hpp"

namespace convmeter {
namespace {

using tuning::ConvAlgo;
using tuning::ShapeClass;
using tuning::TuningParams;
using tuning::TuningTable;

Tensor random_tensor(Shape shape, std::uint64_t seed) {
  Tensor t(std::move(shape));
  t.fill_random(seed);
  return t;
}

bool bitwise_equal(const Tensor& a, const Tensor& b) {
  return a.shape() == b.shape() &&
         std::memcmp(a.data().data(), b.data().data(),
                     static_cast<std::size_t>(a.numel()) * sizeof(float)) == 0;
}

double max_rel_error(const Tensor& a, const Tensor& b) {
  double worst = 0.0;
  for (std::int64_t i = 0; i < a.numel(); ++i) {
    const double x = a.data()[static_cast<std::size_t>(i)];
    const double y = b.data()[static_cast<std::size_t>(i)];
    const double denom = std::max({std::abs(x), std::abs(y), 1.0});
    worst = std::max(worst, std::abs(x - y) / denom);
  }
  return worst;
}

/// A non-default table for this device: every class overridden, so a test
/// exercising it cannot silently fall through to the built-in constants.
TuningTable local_table() {
  TuningTable t;
  t.fingerprint = tuning::device_fingerprint();
  TuningParams gemm_small;
  gemm_small.mc = 48;
  gemm_small.kc = 192;
  gemm_small.nc = 256;
  t.entries[static_cast<std::size_t>(ShapeClass::kGemmSmall)] = gemm_small;
  TuningParams gemm_large;
  gemm_large.mc = 96;
  gemm_large.kc = 320;
  gemm_large.nc = 768;
  t.entries[static_cast<std::size_t>(ShapeClass::kGemmLarge)] = gemm_large;
  TuningParams wino;
  wino.winograd_tile_block = 48;
  wino.conv_algo = ConvAlgo::kWinograd;
  t.entries[static_cast<std::size_t>(ShapeClass::kConv3x3s1)] = wino;
  TuningParams other;
  other.conv_col_tile_floats = 32 * 1024;
  other.conv_algo = ConvAlgo::kIm2col;
  t.entries[static_cast<std::size_t>(ShapeClass::kConvOther)] = other;
  TuningParams ew;
  ew.elementwise_grain = 16384;
  t.entries[static_cast<std::size_t>(ShapeClass::kElementwise)] = ew;
  return t;
}

/// Installs a fixed table for the test body and always restores defaults.
class FixedTableTest : public ::testing::Test {
 protected:
  void SetUp() override { tuning::set_active(local_table()); }
  void TearDown() override { tuning::set_active(std::nullopt); }
};

// ---- envelope ---------------------------------------------------------------

TEST(TuningEnvelopeTest, ShapeClassNamesRoundTrip) {
  for (std::size_t i = 0; i < tuning::kNumShapeClasses; ++i) {
    const auto c = static_cast<ShapeClass>(i);
    const auto back = tuning::shape_class_by_name(tuning::shape_class_name(c));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, c);
  }
  EXPECT_FALSE(tuning::shape_class_by_name("gemm_huge").has_value());
  EXPECT_EQ(tuning::conv_algo_by_name("winograd"), ConvAlgo::kWinograd);
  EXPECT_FALSE(tuning::conv_algo_by_name("fft").has_value());
}

TEST(TuningEnvelopeTest, JsonRoundTripIsBitIdentical) {
  const TuningTable t = local_table();
  const std::string first = tuning::tuning_to_json(t);
  const TuningTable parsed = tuning::tuning_from_json(first);
  EXPECT_EQ(parsed.fingerprint, t.fingerprint);
  for (std::size_t i = 0; i < tuning::kNumShapeClasses; ++i) {
    ASSERT_EQ(parsed.entries[i].has_value(), t.entries[i].has_value());
    if (t.entries[i]) {
      EXPECT_EQ(*parsed.entries[i], *t.entries[i]);
    }
  }
  // Double round trip: serialize -> parse -> serialize is byte-identical.
  EXPECT_EQ(tuning::tuning_to_json(parsed), first);
  EXPECT_EQ(tuning::tuning_to_json(tuning::tuning_from_json(
                tuning::tuning_to_json(parsed))),
            first);
}

TEST(TuningEnvelopeTest, RejectsWrongFormatTag) {
  std::string text = tuning::tuning_to_json(local_table());
  const auto pos = text.find("convmeter-tuning");
  ASSERT_NE(pos, std::string::npos);
  text.replace(pos, std::strlen("convmeter-tuning"), "convmeter-predictor");
  EXPECT_THROW(tuning::tuning_from_json(text), ParseError);
}

TEST(TuningEnvelopeTest, RejectsUnknownVersion) {
  std::string text = tuning::tuning_to_json(local_table());
  const auto pos = text.find("\"version\":1");
  ASSERT_NE(pos, std::string::npos);
  text.replace(pos, std::strlen("\"version\":1"), "\"version\":99");
  EXPECT_THROW(tuning::tuning_from_json(text), ParseError);
}

TEST(TuningEnvelopeTest, RejectsMalformedPayload) {
  EXPECT_THROW(tuning::tuning_from_json("not json at all"), ParseError);
  EXPECT_THROW(tuning::tuning_from_json("{\"format\": 7}"), ParseError);
  // Structurally valid envelope, out-of-contract parameters.
  TuningTable bad = local_table();
  std::string text = tuning::tuning_to_json(bad);
  const auto pos = text.find("\"mc\":48");
  ASSERT_NE(pos, std::string::npos);
  text.replace(pos, std::strlen("\"mc\":48"), "\"mc\":47");  // not 6-aligned
  EXPECT_THROW(tuning::tuning_from_json(text), InvalidArgument);
}

TEST(TuningEnvelopeTest, ValidateRejectsOutOfContractParams) {
  TuningParams p;
  p.mc = 70;  // not a multiple of the 6-row register tile
  EXPECT_THROW(tuning::validate_params(p), InvalidArgument);
  p = TuningParams{};
  p.nc = 520;  // not a multiple of the 16-column tile
  EXPECT_THROW(tuning::validate_params(p), InvalidArgument);
  p = TuningParams{};
  p.winograd_tile_block = 0;
  EXPECT_THROW(tuning::validate_params(p), InvalidArgument);
  EXPECT_NO_THROW(tuning::validate_params(TuningParams{}));
}

TEST(TuningEnvelopeTest, FileRoundTripIsBitIdenticalAndForeignRejected) {
  const std::string path_a = ::testing::TempDir() + "/tuning_rt_a.json";
  const std::string path_b = ::testing::TempDir() + "/tuning_rt_b.json";
  tuning::save_tuning_file(local_table(), path_a);
  const TuningTable loaded = tuning::load_tuning_file(path_a);
  tuning::save_tuning_file(loaded, path_b);
  const auto slurp = [](const std::string& p) {
    std::ifstream in(p, std::ios::binary);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
  };
  EXPECT_FALSE(slurp(path_a).empty());
  EXPECT_EQ(slurp(path_a), slurp(path_b));

  // A file tuned on another machine must be rejected on load ...
  TuningTable foreign = local_table();
  foreign.fingerprint = "arch=sparc;simd=none;threads=64;cpu=SomethingElse";
  const std::string path_f = ::testing::TempDir() + "/tuning_foreign.json";
  tuning::save_tuning_file(foreign, path_f);
  EXPECT_THROW(tuning::load_tuning_file(path_f), InvalidArgument);
  // ... and on programmatic installation.
  EXPECT_THROW(tuning::set_active(foreign), InvalidArgument);
  std::remove(path_a.c_str());
  std::remove(path_b.c_str());
  std::remove(path_f.c_str());
}

TEST(TuningEnvelopeTest, ActiveTableResolvesAndResets) {
  tuning::set_active(local_table());
  EXPECT_EQ(tuning::active_source(), "set_active");
  EXPECT_EQ(tuning::params(ShapeClass::kGemmLarge).mc, 96u);
  EXPECT_EQ(tuning::params(ShapeClass::kConv3x3s1).conv_algo,
            ConvAlgo::kWinograd);
  // Pack bounds cover the largest class of the active table.
  EXPECT_GE(tuning::max_pack_a_floats(), 96u * 320u);
  EXPECT_GE(tuning::max_pack_b_floats(), 320u * 768u);
  tuning::set_active(std::nullopt);
  EXPECT_EQ(tuning::active_source(), "defaults");
  EXPECT_EQ(tuning::params(ShapeClass::kGemmLarge), TuningParams{});
}

// ---- determinism under a fixed table ---------------------------------------

TEST_F(FixedTableTest, GemmByteIdenticalAcrossThreadCounts) {
  constexpr std::size_t m = 145;
  constexpr std::size_t k = 203;
  constexpr std::size_t n = 97;
  const Tensor a = random_tensor(Shape{145, 203}, 11);
  const Tensor b = random_tensor(Shape{203, 97}, 12);
  std::vector<float> c1(m * n, 0.0f);
  std::vector<float> c4(m * n, 0.0f);
  ThreadPool one(1);
  ThreadPool four(4);
  gemm(one, a.data(), b.data(), c1, m, k, n);
  gemm(four, a.data(), b.data(), c4, m, k, n);
  EXPECT_EQ(std::memcmp(c1.data(), c4.data(), m * n * sizeof(float)), 0);
}

TEST_F(FixedTableTest, Im2colConvByteIdenticalAcrossThreadCounts) {
  const auto attrs = Conv2dAttrs::square(32, 48, 3, /*stride=*/2);
  const Tensor x = random_tensor(Shape::nchw(4, 32, 19, 19), 21);
  const Tensor w = random_tensor(Shape{48, 32, 3, 3}, 22);
  const Tensor bias = random_tensor(Shape{48}, 23);
  Conv2dAttrs biased = attrs;
  biased.bias = true;
  ThreadPool one(1);
  ThreadPool four(4);
  const Tensor y1 = conv2d_im2col(one, x, w, bias, biased, ActKind::kReLU);
  const Tensor y4 = conv2d_im2col(four, x, w, bias, biased, ActKind::kReLU);
  EXPECT_TRUE(bitwise_equal(y1, y4));
}

TEST_F(FixedTableTest, BatchMergedConvByteIdenticalAndCorrect) {
  // Small output map (4x4 = 16 columns) with batch 8: 16 <= 2*16 and
  // 8*16 <= 256, so conv2d_im2col takes the batch-merged branch that packs
  // the weight panel once per group instead of once per image.
  const auto attrs = Conv2dAttrs::square(64, 96, 3, /*stride=*/1,
                                         /*padding=*/1);
  const Tensor x = random_tensor(Shape::nchw(8, 64, 4, 4), 31);
  const Tensor w = random_tensor(Shape{96, 64, 3, 3}, 32);
  const Tensor bias = random_tensor(Shape{96}, 33);
  Conv2dAttrs biased = attrs;
  biased.bias = true;
  ThreadPool one(1);
  ThreadPool four(4);
  const Tensor y1 = conv2d_im2col(one, x, w, bias, biased, ActKind::kReLU);
  const Tensor y4 = conv2d_im2col(four, x, w, bias, biased, ActKind::kReLU);
  EXPECT_TRUE(bitwise_equal(y1, y4));
  Tensor ref = conv2d_direct(x, w, bias, biased);
  for (float& v : ref.data()) v = std::max(v, 0.0f);
  EXPECT_LT(max_rel_error(y1, ref), 1e-4);
}

TEST_F(FixedTableTest, WinogradByteIdenticalAcrossThreadCounts) {
  const auto attrs = Conv2dAttrs::square(32, 48, 3, /*stride=*/1,
                                         /*padding=*/1);
  const Tensor x = random_tensor(Shape::nchw(3, 32, 23, 23), 41);
  const Tensor w = random_tensor(Shape{48, 32, 3, 3}, 42);
  const Tensor bias = random_tensor(Shape{48}, 43);
  Conv2dAttrs biased = attrs;
  biased.bias = true;
  ASSERT_TRUE(conv2d_winograd_applicable(biased, x.shape()));
  ThreadPool one(1);
  ThreadPool four(4);
  const Tensor y1 = conv2d_winograd(one, x, w, bias, biased, ActKind::kReLU);
  const Tensor y4 = conv2d_winograd(four, x, w, bias, biased, ActKind::kReLU);
  EXPECT_TRUE(bitwise_equal(y1, y4));
}

TEST_F(FixedTableTest, TunedConvClassesDriveDispatch) {
  // The fixed table forces winograd on the 3x3/s1 class and im2col on the
  // rest; the dispatcher must follow the table, not the heuristic.
  const auto eligible = Conv2dAttrs::square(8, 8, 3, 1, 1);
  const auto strided = Conv2dAttrs::square(8, 8, 3, 2, 1);
  const Shape in = Shape::nchw(1, 8, 8, 8);
  EXPECT_EQ(conv2d_forward_algo(eligible, in), ConvAlgo::kWinograd);
  EXPECT_EQ(conv2d_forward_algo(strided, in), ConvAlgo::kIm2col);
}

// ---- Winograd numerics ------------------------------------------------------

TEST(WinogradTest, MatchesIm2colAndDirectAcrossShapes) {
  struct Case {
    std::int64_t batch, cin, cout, hw, groups, pad;
    std::optional<ActKind> act;
  };
  const Case cases[] = {
      {1, 16, 16, 8, 1, 1, std::nullopt},
      {2, 32, 48, 14, 1, 1, ActKind::kReLU},
      {1, 3, 16, 23, 1, 1, std::nullopt},
      {2, 32, 32, 9, 4, 1, ActKind::kReLU},
      {1, 17, 19, 7, 1, 0, std::nullopt},
      {3, 24, 24, 4, 2, 1, ActKind::kGELU},
  };
  for (const Case& c : cases) {
    Conv2dAttrs attrs = Conv2dAttrs::square(c.cin, c.cout, 3, 1, c.pad);
    attrs.groups = c.groups;
    attrs.bias = true;
    const Tensor x = random_tensor(Shape::nchw(c.batch, c.cin, c.hw, c.hw), 51);
    const Tensor w =
        random_tensor(Shape{c.cout, c.cin / c.groups, 3, 3}, 52);
    const Tensor bias = random_tensor(Shape{c.cout}, 53);
    ASSERT_TRUE(conv2d_winograd_applicable(attrs, x.shape()));
    ThreadPool pool(2);
    const Tensor wino = conv2d_winograd(pool, x, w, bias, attrs, c.act);
    const Tensor i2c = conv2d_im2col(pool, x, w, bias, attrs, c.act);
    EXPECT_LT(max_rel_error(wino, i2c), 1e-3)
        << "cin=" << c.cin << " cout=" << c.cout << " hw=" << c.hw;
    if (!c.act) {
      const Tensor ref = conv2d_direct(x, w, bias, attrs);
      EXPECT_LT(max_rel_error(wino, ref), 1e-3)
          << "cin=" << c.cin << " cout=" << c.cout << " hw=" << c.hw;
    }
  }
}

// ---- zero steady-state allocation ------------------------------------------

TEST(WinogradTest, SteadyStateDoesNotGrowWorkspace) {
  const auto attrs = Conv2dAttrs::square(64, 64, 3, 1, 1);
  const Tensor x = random_tensor(Shape::nchw(2, 64, 16, 16), 61);
  const Tensor w = random_tensor(Shape{64, 64, 3, 3}, 62);
  const Tensor bias;
  ThreadPool pool(3);
  // Warm every participating arena (pool workers + caller).
  for (int i = 0; i < 2; ++i) {
    (void)conv2d_winograd(pool, x, w, bias, attrs);
  }
  const std::uint64_t grows_before = Workspace::total_grows();
  for (int i = 0; i < 8; ++i) {
    (void)conv2d_winograd(pool, x, w, bias, attrs);
  }
  EXPECT_EQ(Workspace::total_grows(), grows_before)
      << "Winograd path allocated in steady state";
}

}  // namespace
}  // namespace convmeter
