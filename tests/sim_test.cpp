// Device-simulator tests: roofline behaviour, efficiency curves, memory
// accounting, ring-all-reduce cost model, and training-step invariants.
#include <gtest/gtest.h>

#include <array>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "exec/executor.hpp"
#include "metrics/metrics.hpp"
#include "models/zoo.hpp"
#include "sim/comm.hpp"
#include "sim/cost_model.hpp"
#include "sim/device.hpp"
#include "sim/inference_sim.hpp"
#include "sim/training_sim.hpp"

namespace convmeter {
namespace {

// ---- DeviceSpec ---------------------------------------------------------------

TEST(DeviceTest, EfficiencyIncreasesWithWork) {
  const DeviceSpec gpu = a100_80gb();
  EXPECT_LT(gpu.effective_flops(1e6), gpu.effective_flops(1e9));
  EXPECT_LT(gpu.effective_flops(1e9), gpu.effective_flops(1e12));
}

TEST(DeviceTest, EfficiencyBoundedByMaxEfficiency) {
  const DeviceSpec gpu = a100_80gb();
  EXPECT_LE(gpu.effective_flops(1e15), gpu.peak_flops * gpu.max_efficiency);
  EXPECT_LE(gpu.effective_bandwidth(1e12),
            gpu.mem_bandwidth * gpu.max_efficiency);
}

TEST(DeviceTest, PresetLookup) {
  EXPECT_EQ(device_by_name("a100").name, "a100");
  EXPECT_EQ(device_by_name("xeon_5318y").name, "xeon_5318y");
  EXPECT_THROW(device_by_name("tpu"), InvalidArgument);
}

TEST(DeviceTest, GpuIsFasterThanCpuCore) {
  EXPECT_GT(a100_80gb().peak_flops, 100.0 * xeon_gold_5318y_core().peak_flops);
}

TEST(DeviceTest, NegativeWorkRejected) {
  EXPECT_THROW(a100_80gb().effective_flops(-1.0), InvalidArgument);
}

// ---- kernel cost model ----------------------------------------------------------

TEST(CostModelTest, StructuralNodeIsFree) {
  LayerWork w;  // all zeros
  EXPECT_EQ(kernel_time(a100_80gb(), w), 0.0);
}

TEST(CostModelTest, LaunchOverheadIsFloor) {
  const DeviceSpec gpu = a100_80gb();
  LayerWork w;
  w.flops = 1.0;
  w.input_elems = 1.0;
  w.output_elems = 1.0;
  EXPECT_GE(kernel_time(gpu, w), gpu.launch_overhead);
}

TEST(CostModelTest, ComputeBoundKernelScalesWithFlops) {
  const DeviceSpec gpu = a100_80gb();
  LayerWork small;
  small.flops = 1e11;
  small.input_elems = 1e4;
  small.output_elems = 1e4;
  LayerWork big = small;
  big.flops = 2e11;
  const double ts = kernel_time(gpu, small);
  const double tb = kernel_time(gpu, big);
  EXPECT_GT(tb, 1.5 * ts);
}

TEST(CostModelTest, MemoryBoundKernelIgnoresFlopsDelta) {
  const DeviceSpec gpu = a100_80gb();
  LayerWork w;
  w.flops = 1e3;  // trivial compute
  w.input_elems = 1e9;
  w.output_elems = 1e9;
  LayerWork w2 = w;
  w2.flops = 2e3;
  EXPECT_NEAR(kernel_time(gpu, w), kernel_time(gpu, w2), 1e-9);
}

TEST(CostModelTest, ForwardTimeSumsOverLayers) {
  const Graph g = models::build("resnet18");
  const Shape in = Shape::nchw(1, 3, 64, 64);
  double sum = 0.0;
  for (const LayerWork& w : per_layer_work(g, in)) {
    sum += kernel_time(a100_80gb(), w);
  }
  EXPECT_NEAR(forward_time(a100_80gb(), g, in), sum, 1e-12);
}

TEST(CostModelTest, ForwardTimeMonotonicInBatch) {
  const Graph g = models::build("resnet50");
  const DeviceSpec gpu = a100_80gb();
  double prev = 0.0;
  for (const std::int64_t b : {1, 4, 16, 64}) {
    const double t = forward_time(gpu, g, Shape::nchw(b, 3, 64, 64));
    EXPECT_GT(t, prev);
    prev = t;
  }
}

TEST(CostModelTest, MemoryFootprintGrowsWithBatchAndTraining) {
  const Graph g = models::build("resnet50");
  const double inf1 =
      memory_footprint_bytes(g, Shape::nchw(1, 3, 224, 224), false);
  const double inf64 =
      memory_footprint_bytes(g, Shape::nchw(64, 3, 224, 224), false);
  const double tr64 =
      memory_footprint_bytes(g, Shape::nchw(64, 3, 224, 224), true);
  EXPECT_GT(inf64, inf1);
  EXPECT_GT(tr64, inf64);
}

TEST(CostModelTest, HugeBatchExceedsA100Memory) {
  const Graph g = models::build("resnet152");
  EXPECT_TRUE(
      fits_in_memory(a100_80gb(), g, Shape::nchw(1, 3, 224, 224), true));
  EXPECT_FALSE(
      fits_in_memory(a100_80gb(), g, Shape::nchw(4096, 3, 224, 224), true));
}

// ---- comm fabric -----------------------------------------------------------------

TEST(CommTest, SingleDeviceIsFree) {
  const CommFabric f = nvlink_hdr200_fabric();
  EXPECT_EQ(f.ring_allreduce_time(1e9, 1, 1), 0.0);
}

TEST(CommTest, MonotonicInBytes) {
  const CommFabric f = nvlink_hdr200_fabric();
  EXPECT_LT(f.ring_allreduce_time(1e6, 8, 2), f.ring_allreduce_time(1e8, 8, 2));
}

TEST(CommTest, MonotonicInNodeCount) {
  const CommFabric f = nvlink_hdr200_fabric();
  double prev = 0.0;
  for (const int nodes : {1, 2, 4, 8, 16}) {
    const double t = f.ring_allreduce_time(256e6, nodes * 4, nodes);
    EXPECT_GT(t, prev);
    prev = t;
  }
}

TEST(CommTest, InterNodeSlowerThanIntraNode) {
  const CommFabric f = nvlink_hdr200_fabric();
  // Same device count: 4 GPUs in one node vs 4 nodes of 1.
  EXPECT_LT(f.ring_allreduce_time(1e8, 4, 1), f.ring_allreduce_time(1e8, 4, 4));
}

TEST(CommTest, UnevenDeviceSplitRejected) {
  const CommFabric f = nvlink_hdr200_fabric();
  EXPECT_THROW(f.ring_allreduce_time(1e6, 5, 2), InvalidArgument);
}

// ---- training simulator -----------------------------------------------------------

TEST(TrainingSimTest, StepIsSumOfPhases) {
  TrainingSimulator sim(a100_80gb(), nvlink_hdr200_fabric());
  const Graph g = models::build("resnet18");
  const TrainStepTimes t =
      sim.expected_step(g, Shape::nchw(32, 3, 64, 64), TrainConfig{});
  EXPECT_NEAR(t.step, t.fwd + t.bwd + t.grad, 1e-12);
  EXPECT_GT(t.fwd, 0.0);
  EXPECT_GT(t.bwd, t.fwd);  // backward does roughly double the work
  EXPECT_GT(t.grad, 0.0);
}

TEST(TrainingSimTest, SingleDeviceHasNoExposedComm) {
  TrainingSimulator sim(a100_80gb(), nvlink_hdr200_fabric());
  const Graph g = models::build("alexnet");
  TrainConfig one;
  TrainConfig big = one;
  big.num_devices = 64;
  big.num_nodes = 16;
  const Shape shape = Shape::nchw(32, 3, 128, 128);
  const TrainStepTimes t1 = sim.expected_step(g, shape, one);
  const TrainStepTimes t16 = sim.expected_step(g, shape, big);
  // AlexNet is weight-heavy: multi-node sync must add exposed comm time.
  EXPECT_GT(t16.grad, t1.grad);
  // Compute phases are unchanged (same per-device mini-batch).
  EXPECT_NEAR(t16.fwd, t1.fwd, 1e-12);
  EXPECT_NEAR(t16.bwd, t1.bwd, 1e-12);
}

TEST(TrainingSimTest, SmallerFusionBucketsIncreaseOverheadCost) {
  TrainingSimulator sim(a100_80gb(), nvlink_hdr200_fabric());
  const Graph g = models::build("resnet50");
  TrainConfig coarse;
  coarse.num_devices = 8;
  coarse.num_nodes = 2;
  TrainConfig fine = coarse;
  fine.fusion_threshold_bytes = 1 << 16;  // 64 KiB buckets
  const Shape shape = Shape::nchw(8, 3, 64, 64);
  // Many small buckets pay the per-tensor overhead many times; with a small
  // backward pass to hide behind, the exposed comm grows.
  const TrainStepTimes c = sim.expected_step(g, shape, coarse);
  const TrainStepTimes f = sim.expected_step(g, shape, fine);
  EXPECT_GE(f.grad, c.grad);
}

TEST(TrainingSimTest, MeasureAddsBoundedNoise) {
  TrainingSimulator sim(a100_80gb(), nvlink_hdr200_fabric());
  const Graph g = models::build("resnet18");
  const Shape shape = Shape::nchw(16, 3, 64, 64);
  const TrainStepTimes expected = sim.expected_step(g, shape, TrainConfig{});
  Rng rng(1);
  for (int i = 0; i < 20; ++i) {
    const TrainStepTimes t = sim.measure_step(g, shape, TrainConfig{}, rng);
    EXPECT_GT(t.fwd, 0.5 * expected.fwd);
    EXPECT_LT(t.fwd, 2.0 * expected.fwd);
    EXPECT_NEAR(t.step, t.fwd + t.bwd + t.grad, 1e-12);
  }
}

TEST(TrainingSimTest, WeakScalingThroughputForComputeHeavyModel) {
  // ResNet50 at batch 64 is compute-dominated: throughput should keep
  // growing up to 16 nodes (Fig. 8's well-scaling family).
  TrainingSimulator sim(a100_80gb(), nvlink_hdr200_fabric());
  const Graph g = models::build("resnet50");
  const Shape shape = Shape::nchw(64, 3, 128, 128);
  double prev_throughput = 0.0;
  for (const int nodes : {1, 2, 4, 8, 16}) {
    TrainConfig cfg;
    cfg.num_nodes = nodes;
    cfg.num_devices = nodes * 4;
    const TrainStepTimes t = sim.expected_step(g, shape, cfg);
    const double throughput = 64.0 * cfg.num_devices / t.step;
    EXPECT_GT(throughput, prev_throughput);
    prev_throughput = throughput;
  }
}

TEST(TrainingSimTest, AlexNetScalesWorseThanResNet50) {
  // The paper's Fig. 8 headline: AlexNet (weight-heavy, FLOP-light) shows a
  // prominent diminishing return the others do not.
  TrainingSimulator sim(a100_80gb(), nvlink_hdr200_fabric());
  const Shape shape = Shape::nchw(64, 3, 128, 128);
  const auto scaling16 = [&](const char* name) {
    const Graph g = models::build(name);
    TrainConfig one;
    one.num_devices = 4;
    one.num_nodes = 1;
    TrainConfig sixteen;
    sixteen.num_devices = 64;
    sixteen.num_nodes = 16;
    const double t1 = sim.expected_step(g, shape, one).step;
    const double t16 = sim.expected_step(g, shape, sixteen).step;
    return (64.0 * 64.0 / t16) / (64.0 * 4.0 / t1);  // speedup over 16x nodes
  };
  EXPECT_LT(scaling16("alexnet"), 0.85 * scaling16("resnet50"));
}

TEST(TrainingSimTest, InvalidConfigRejected) {
  TrainingSimulator sim(a100_80gb(), nvlink_hdr200_fabric());
  const Graph g = models::build("resnet18");
  TrainConfig bad;
  bad.num_devices = 5;
  bad.num_nodes = 2;
  EXPECT_THROW(sim.expected_step(g, Shape::nchw(1, 3, 64, 64), bad),
               InvalidArgument);
}

// ---- inference simulator -----------------------------------------------------------

TEST(InferenceSimTest, MeasureJittersAroundExpected) {
  InferenceSimulator sim(a100_80gb());
  const Graph g = models::build("resnet18");
  const Shape shape = Shape::nchw(8, 3, 64, 64);
  const double expected = sim.expected(g, shape);
  Rng rng(2);
  double sum = 0.0;
  constexpr int n = 200;
  for (int i = 0; i < n; ++i) sum += sim.measure(g, shape, rng);
  EXPECT_NEAR(sum / n, expected, 0.05 * expected);
}

TEST(InferenceSimTest, CpuSlowerThanGpu) {
  const Graph g = models::build("resnet50");
  const Shape shape = Shape::nchw(1, 3, 224, 224);
  InferenceSimulator cpu(xeon_gold_5318y_core());
  InferenceSimulator gpu(a100_80gb());
  EXPECT_GT(cpu.expected(g, shape), 10.0 * gpu.expected(g, shape));
}

// ---- per-family efficiency curves ---------------------------------------

TEST(FamilyEfficiencyTest, DistinctCurvesPerFamily) {
  const DeviceSpec cpu = xeon_gold_5318y_core();
  const double work = 1e9;
  // Attention, norm, and elementwise kernels sit on their own cost curves;
  // the conv factor is the 1.0 reference.
  EXPECT_NE(cpu.effective_flops(work, OpFamily::kAttention),
            cpu.effective_flops(work, OpFamily::kConv));
  EXPECT_LT(cpu.effective_flops(work, OpFamily::kNorm),
            cpu.effective_flops(work, OpFamily::kConv));
  EXPECT_LT(cpu.effective_flops(work, OpFamily::kElementwise),
            cpu.effective_flops(work, OpFamily::kConv));
  EXPECT_DOUBLE_EQ(cpu.effective_flops(work, OpFamily::kConv),
                   cpu.effective_flops(work));
}

/// The xeon family factors are calibrated against this repo's real CPU
/// executor: simulated and measured per-op-family time shares on vit_s_16
/// must agree that gemm dominates, attention is second, and the remaining
/// families are noise. (The small families are within measurement jitter of
/// each other, so only the top of the ordering is pinned.)
TEST(FamilyEfficiencyTest, SimMatchesRealFamilyRankOnViT) {
  const Graph g = models::build("vit_s_16");
  const Shape in = Shape::nchw(1, 3, 224, 224);
  const DeviceSpec dev = xeon_gold_5318y_core();

  std::array<double, kNumOpFamilies> sim{};
  for (const LayerWork& w : per_layer_work(g, in)) {
    sim[static_cast<std::size_t>(w.family)] += kernel_time(dev, w);
  }

  Executor ex(1);
  ex.run_random(g, in, 1);  // warm-up: workspace growth, page faults
  std::array<double, kNumOpFamilies> real{};
  const ExecutionResult res = ex.run_random(g, in, 1);
  for (const LayerTiming& lt : res.layers) {
    real[static_cast<std::size_t>(op_family(g.node(lt.node).kind))] +=
        lt.seconds;
  }

  for (const auto& shares : {sim, real}) {
    const double gemm = shares[static_cast<std::size_t>(OpFamily::kGemm)];
    const double att = shares[static_cast<std::size_t>(OpFamily::kAttention)];
    double total = 0.0;
    for (const double s : shares) total += s;
    EXPECT_GT(gemm, att);  // rank 1 vs rank 2
    for (const OpFamily tail :
         {OpFamily::kConv, OpFamily::kNorm, OpFamily::kElementwise}) {
      EXPECT_LT(shares[static_cast<std::size_t>(tail)], att);
    }
    // The two transformer families dominate the forward pass on both sides.
    EXPECT_GT((gemm + att) / total, 0.8);
  }
}

}  // namespace
}  // namespace convmeter
