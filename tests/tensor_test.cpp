// Unit tests for src/tensor: Shape and Tensor.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "tensor/shape.hpp"
#include "tensor/tensor.hpp"

namespace convmeter {
namespace {

TEST(ShapeTest, NumelAndRank) {
  const Shape s{2, 3, 4, 5};
  EXPECT_EQ(s.rank(), 4u);
  EXPECT_EQ(s.numel(), 120);
  EXPECT_EQ(Shape{}.numel(), 0);
}

TEST(ShapeTest, NchwAccessors) {
  const Shape s = Shape::nchw(8, 3, 224, 224);
  EXPECT_EQ(s.batch(), 8);
  EXPECT_EQ(s.channels(), 3);
  EXPECT_EQ(s.height(), 224);
  EXPECT_EQ(s.width(), 224);
}

TEST(ShapeTest, NchwAccessorRequiresRank4) {
  const Shape s{2, 3};
  EXPECT_THROW(s.batch(), InvalidArgument);
}

TEST(ShapeTest, WithBatchReplacesLeadingDim) {
  const Shape s = Shape::nchw(1, 3, 32, 32);
  const Shape b = s.with_batch(64);
  EXPECT_EQ(b.batch(), 64);
  EXPECT_EQ(b.channels(), 3);
  const Shape fc = Shape{1, 1000}.with_batch(16);
  EXPECT_EQ(fc.dim(0), 16);
}

TEST(ShapeTest, WithBatchRejectsNonPositive) {
  EXPECT_THROW(Shape::nchw(1, 3, 4, 4).with_batch(0), InvalidArgument);
}

TEST(ShapeTest, EqualityAndToString) {
  EXPECT_EQ(Shape({1, 2}), Shape({1, 2}));
  EXPECT_NE(Shape({1, 2}), Shape({2, 1}));
  EXPECT_EQ(Shape({1, 3, 4, 4}).to_string(), "(1, 3, 4, 4)");
}

TEST(ShapeTest, NegativeDimsRejected) {
  EXPECT_THROW(Shape({-1, 2}), InvalidArgument);
}

TEST(ShapeTest, DimOutOfRangeThrows) {
  EXPECT_THROW(Shape({1, 2}).dim(2), InvalidArgument);
}

TEST(TensorTest, ZeroInitialized) {
  Tensor t(Shape{2, 3});
  for (const float v : t.data()) EXPECT_EQ(v, 0.0f);
  EXPECT_EQ(t.numel(), 6);
}

TEST(TensorTest, FillValueConstructor) {
  Tensor t(Shape{4}, 2.5f);
  for (const float v : t.data()) EXPECT_EQ(v, 2.5f);
}

TEST(TensorTest, At4IndexingIsRowMajorNchw) {
  Tensor t(Shape::nchw(2, 2, 2, 2));
  t.at4(1, 1, 1, 1) = 42.0f;
  EXPECT_EQ(t.at(15), 42.0f);
  t.at4(0, 1, 0, 1) = 7.0f;
  EXPECT_EQ(t.at(5), 7.0f);
}

TEST(TensorTest, At4BoundsChecked) {
  Tensor t(Shape::nchw(1, 1, 2, 2));
  EXPECT_THROW(t.at4(0, 0, 2, 0), InvalidArgument);
  EXPECT_THROW(t.at4(1, 0, 0, 0), InvalidArgument);
}

TEST(TensorTest, AtBoundsChecked) {
  Tensor t(Shape{3});
  EXPECT_THROW(t.at(3), InvalidArgument);
}

TEST(TensorTest, FillRandomDeterministic) {
  Tensor a(Shape{100});
  Tensor b(Shape{100});
  a.fill_random(5);
  b.fill_random(5);
  EXPECT_EQ(a.max_abs_diff(b), 0.0f);
  b.fill_random(6);
  EXPECT_GT(a.max_abs_diff(b), 0.0f);
}

TEST(TensorTest, FillRandomRange) {
  Tensor t(Shape{1000});
  t.fill_random(9);
  for (const float v : t.data()) {
    EXPECT_GE(v, -1.0f);
    EXPECT_LT(v, 1.0f);
  }
}

TEST(TensorTest, MaxAbsDiffShapeMismatchThrows) {
  Tensor a(Shape{2});
  Tensor b(Shape{3});
  EXPECT_THROW(a.max_abs_diff(b), InvalidArgument);
}

TEST(TensorTest, UninitializedTagAllocatesFullExtentWritable) {
  Tensor t(Shape{4, 5}, Tensor::kUninitialized);
  EXPECT_EQ(t.shape(), (Shape{4, 5}));
  ASSERT_EQ(t.data().size(), 20u);
  // Contents are unspecified, but every element must be writable and
  // readable once written — this is what kernels that fill the whole
  // output (conv, linear, elementwise) rely on when skipping the zero fill.
  for (std::size_t i = 0; i < t.data().size(); ++i) {
    t.data()[i] = static_cast<float>(i);
  }
  for (std::size_t i = 0; i < t.data().size(); ++i) {
    EXPECT_EQ(t.data()[i], static_cast<float>(i));
  }
}

TEST(TensorTest, UninitializedTagMatchesValueInitShapeSemantics) {
  Tensor a(Shape{3, 2, 2}, Tensor::kUninitialized);
  Tensor b(Shape{3, 2, 2});
  EXPECT_EQ(a.shape(), b.shape());
  EXPECT_EQ(a.data().size(), b.data().size());
  // Value-init ctor still zero-fills.
  for (float v : b.data()) EXPECT_EQ(v, 0.0f);
}

}  // namespace
}  // namespace convmeter
