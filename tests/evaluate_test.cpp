// Leave-one-ConvNet-out evaluation tests on planted data where the exact
// expected behaviour is known, exercised through the generic predictor
// harness (predict/evaluate.hpp).
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "predict/evaluate.hpp"

namespace convmeter {
namespace {

/// Builds samples for `num_models` synthetic ConvNets obeying one shared
/// exact linear law, so LOO predictions are exact.
std::vector<RuntimeSample> lawful_samples(int num_models) {
  std::vector<RuntimeSample> samples;
  for (int mdl = 0; mdl < num_models; ++mdl) {
    const double f = 1e9 * (mdl + 1);
    for (const double batch : {1.0, 4.0, 16.0, 64.0}) {
      for (const int devices : {1, 4, 8}) {
        RuntimeSample s;
        s.model = "net" + std::to_string(mdl);
        s.device = "synthetic";
        s.image_size = 64;
        s.num_devices = devices;
        s.num_nodes = devices > 4 ? 2 : 1;
        s.global_batch = static_cast<std::int64_t>(batch * devices);
        s.flops1 = f;
        s.inputs1 = f / 300.0;
        s.outputs1 = f / 250.0;
        s.weights = f / 90.0;
        s.layers = 40.0 + 3.0 * mdl;
        s.t_infer =
            batch * (2e-12 * f + 1e-9 * s.inputs1 + 2e-9 * s.outputs1) + 5e-5;
        s.t_fwd = s.t_infer;
        s.t_bwd = 2.2 * s.t_fwd;
        s.t_grad = 2e-5 * s.layers + 5e-11 * s.weights + 4e-5 * devices;
        s.t_step = s.t_fwd + s.t_bwd + s.t_grad;
        samples.push_back(s);
      }
    }
  }
  return samples;
}

TEST(EvaluatePhaseTest, ExactLawGivesNearZeroError) {
  const auto samples = lawful_samples(5);
  const LooResult r = evaluate_loo("convmeter-fwd-only", samples);
  EXPECT_GT(r.pooled.r2, 0.999);
  EXPECT_LT(r.pooled.mape, 1e-6);
  EXPECT_EQ(r.per_group.size(), 5u);
  EXPECT_EQ(r.skipped, 0u);
}

TEST(EvaluatePhaseTest, GroupsSortedByName) {
  const auto samples = lawful_samples(4);
  PredictorOptions options;
  options.phase = Phase::kForward;
  const LooResult r = evaluate_loo("convmeter-fwd-only", samples, options);
  for (std::size_t i = 1; i < r.per_group.size(); ++i) {
    EXPECT_LT(r.per_group[i - 1].group, r.per_group[i].group);
  }
}

TEST(EvaluatePhaseTest, OutlierModelShowsHighHeldOutError) {
  auto samples = lawful_samples(4);
  // Make net3 three times slower than the shared law predicts.
  for (auto& s : samples) {
    if (s.model == "net3") s.t_infer *= 3.0;
  }
  const LooResult r = evaluate_loo("convmeter-fwd-only", samples);
  const auto& outlier = r.per_group.back();
  ASSERT_EQ(outlier.group, "net3");
  // Held out, net3 is predicted from the conforming law -> ~3x off. (The
  // conforming groups also degrade somewhat because net3 contaminates
  // their training sets — that is inherent to the LOO protocol.)
  EXPECT_GT(outlier.errors.mape, 0.3);
  EXPECT_LT(r.pooled.r2, 0.99);
}

TEST(EvaluatePhaseTest, SingleMetricWorseThanCombinedOnMixedData) {
  // Give the inputs metric an independent influence so FLOPs-only cannot
  // explain everything.
  auto samples = lawful_samples(6);
  for (std::size_t i = 0; i < samples.size(); ++i) {
    samples[i].inputs1 *= (1.0 + 0.5 * ((i * 29) % 7));
    const double b = samples[i].mini_batch();
    samples[i].t_infer = b * (2e-12 * samples[i].flops1 +
                              1e-9 * samples[i].inputs1 +
                              2e-9 * samples[i].outputs1) +
                         5e-5;
  }
  const double mape_combined =
      evaluate_loo("convmeter-fwd-only", samples).pooled.mape;
  const double mape_flops = evaluate_loo("flops-only", samples).pooled.mape;
  EXPECT_LT(mape_combined, mape_flops);
}

TEST(EvaluateTrainStepTest, ExactLawGivesNearZeroError) {
  const auto samples = lawful_samples(5);
  const LooResult r = evaluate_loo("convmeter", samples);
  EXPECT_GT(r.pooled.r2, 0.999);
  EXPECT_LT(r.pooled.mape, 1e-4);
}

TEST(EvaluateTrainStepTest, PooledCountsEverySample) {
  const auto samples = lawful_samples(3);
  const LooResult r = evaluate_loo("convmeter", samples);
  EXPECT_EQ(r.pooled.count, samples.size());
}

TEST(EvaluateTrainStepTest, RequiresTwoModels) {
  const auto samples = lawful_samples(1);
  EXPECT_THROW(evaluate_loo("convmeter", samples), InvalidArgument);
  EXPECT_THROW(evaluate_loo("convmeter", {}), InvalidArgument);
}

TEST(EvaluateTest, UnknownPredictorNameRejected) {
  EXPECT_THROW(evaluate_loo("no-such-predictor", lawful_samples(3)),
               InvalidArgument);
}

}  // namespace
}  // namespace convmeter
