// Leave-one-ConvNet-out evaluation tests on planted data where the exact
// expected behaviour is known, exercised through the generic predictor
// harness (predict/evaluate.hpp).
#include <gtest/gtest.h>

#include <memory>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "predict/evaluate.hpp"

namespace convmeter {
namespace {

/// Builds samples for `num_models` synthetic ConvNets obeying one shared
/// exact linear law, so LOO predictions are exact.
std::vector<RuntimeSample> lawful_samples(int num_models) {
  std::vector<RuntimeSample> samples;
  for (int mdl = 0; mdl < num_models; ++mdl) {
    const double f = 1e9 * (mdl + 1);
    for (const double batch : {1.0, 4.0, 16.0, 64.0}) {
      for (const int devices : {1, 4, 8}) {
        RuntimeSample s;
        s.model = "net" + std::to_string(mdl);
        s.device = "synthetic";
        s.image_size = 64;
        s.num_devices = devices;
        s.num_nodes = devices > 4 ? 2 : 1;
        s.global_batch = static_cast<std::int64_t>(batch * devices);
        s.flops1 = f;
        s.inputs1 = f / 300.0;
        s.outputs1 = f / 250.0;
        s.weights = f / 90.0;
        s.layers = 40.0 + 3.0 * mdl;
        s.t_infer =
            batch * (2e-12 * f + 1e-9 * s.inputs1 + 2e-9 * s.outputs1) + 5e-5;
        s.t_fwd = s.t_infer;
        s.t_bwd = 2.2 * s.t_fwd;
        s.t_grad = 2e-5 * s.layers + 5e-11 * s.weights + 4e-5 * devices;
        s.t_step = s.t_fwd + s.t_bwd + s.t_grad;
        samples.push_back(s);
      }
    }
  }
  return samples;
}

TEST(EvaluatePhaseTest, ExactLawGivesNearZeroError) {
  const auto samples = lawful_samples(5);
  const LooResult r = evaluate_loo("convmeter-fwd-only", samples);
  EXPECT_GT(r.pooled.r2, 0.999);
  EXPECT_LT(r.pooled.mape, 1e-6);
  EXPECT_EQ(r.per_group.size(), 5u);
  EXPECT_EQ(r.skipped, 0u);
}

TEST(EvaluatePhaseTest, GroupsSortedByName) {
  const auto samples = lawful_samples(4);
  PredictorOptions options;
  options.phase = Phase::kForward;
  const LooResult r = evaluate_loo("convmeter-fwd-only", samples, options);
  for (std::size_t i = 1; i < r.per_group.size(); ++i) {
    EXPECT_LT(r.per_group[i - 1].group, r.per_group[i].group);
  }
}

TEST(EvaluatePhaseTest, OutlierModelShowsHighHeldOutError) {
  auto samples = lawful_samples(4);
  // Make net3 three times slower than the shared law predicts.
  for (auto& s : samples) {
    if (s.model == "net3") s.t_infer *= 3.0;
  }
  const LooResult r = evaluate_loo("convmeter-fwd-only", samples);
  const auto& outlier = r.per_group.back();
  ASSERT_EQ(outlier.group, "net3");
  // Held out, net3 is predicted from the conforming law -> ~3x off. (The
  // conforming groups also degrade somewhat because net3 contaminates
  // their training sets — that is inherent to the LOO protocol.)
  EXPECT_GT(outlier.errors.mape, 0.3);
  EXPECT_LT(r.pooled.r2, 0.99);
}

TEST(EvaluatePhaseTest, SingleMetricWorseThanCombinedOnMixedData) {
  // Give the inputs metric an independent influence so FLOPs-only cannot
  // explain everything.
  auto samples = lawful_samples(6);
  for (std::size_t i = 0; i < samples.size(); ++i) {
    samples[i].inputs1 *= (1.0 + 0.5 * ((i * 29) % 7));
    const double b = samples[i].mini_batch();
    samples[i].t_infer = b * (2e-12 * samples[i].flops1 +
                              1e-9 * samples[i].inputs1 +
                              2e-9 * samples[i].outputs1) +
                         5e-5;
  }
  const double mape_combined =
      evaluate_loo("convmeter-fwd-only", samples).pooled.mape;
  const double mape_flops = evaluate_loo("flops-only", samples).pooled.mape;
  EXPECT_LT(mape_combined, mape_flops);
}

TEST(EvaluateTrainStepTest, ExactLawGivesNearZeroError) {
  const auto samples = lawful_samples(5);
  const LooResult r = evaluate_loo("convmeter", samples);
  EXPECT_GT(r.pooled.r2, 0.999);
  EXPECT_LT(r.pooled.mape, 1e-4);
}

TEST(EvaluateTrainStepTest, PooledCountsEverySample) {
  const auto samples = lawful_samples(3);
  const LooResult r = evaluate_loo("convmeter", samples);
  EXPECT_EQ(r.pooled.count, samples.size());
}

TEST(EvaluateTrainStepTest, RequiresTwoModels) {
  const auto samples = lawful_samples(1);
  EXPECT_THROW(evaluate_loo("convmeter", samples), InvalidArgument);
  EXPECT_THROW(evaluate_loo("convmeter", {}), InvalidArgument);
}

TEST(EvaluateTest, UnknownPredictorNameRejected) {
  EXPECT_THROW(evaluate_loo("no-such-predictor", lawful_samples(3)),
               InvalidArgument);
}


// ---------------------------------------------------------------------------
// Streaming LOO: the group-aware accumulator path must agree with the
// refit-per-fold protocol it replaced, and accumulator fits must agree
// with vector fits.

TEST(StreamingLooTest, MatchesRefitPerFoldWithinTolerance) {
  // Planted lawful data plus noise, evaluated both ways: via the streaming
  // accumulator path (convmeter-fwd-only is StreamingFitCapable) and via
  // the explicit refit fallback driven through the factory overload with a
  // predictor wrapper that hides the streaming capability.
  auto samples = lawful_samples(5);
  Rng rng(23);
  for (auto& s : samples) s.t_infer *= 1.0 + rng.uniform(-0.05, 0.05);

  const LooResult streamed = evaluate_loo("convmeter-fwd-only", samples);

  // Hide StreamingFitCapable behind a plain Predictor wrapper, forcing the
  // materialize-and-refit fallback on the same data.
  class HideStreaming : public Predictor {
   public:
    HideStreaming()
        : Predictor("convmeter-fwd-only"),
          inner_(make_predictor("convmeter-fwd-only")) {}
    Phase target() const override { return inner_->target(); }

   protected:
    void do_fit(SampleStream& stream) override { inner_->fit(stream); }
    double do_predict(const RuntimeSample& s) const override {
      return inner_->predict(s);
    }
    json::Value model_json() const override { return json::Value(); }
    void load_model_json(const json::Value&) override {}

   private:
    std::unique_ptr<Predictor> inner_;
  };
  const LooResult refit = evaluate_loo(
      [] { return std::unique_ptr<Predictor>(new HideStreaming()); }, samples);

  ASSERT_EQ(streamed.per_group.size(), refit.per_group.size());
  EXPECT_NEAR(streamed.pooled.r2, refit.pooled.r2, 1e-9);
  EXPECT_NEAR(streamed.pooled.mape, refit.pooled.mape, 1e-9);
  EXPECT_NEAR(streamed.pooled.nrmse, refit.pooled.nrmse, 1e-9);
  for (std::size_t g = 0; g < streamed.per_group.size(); ++g) {
    EXPECT_EQ(streamed.per_group[g].group, refit.per_group[g].group);
    EXPECT_NEAR(streamed.per_group[g].errors.mape,
                refit.per_group[g].errors.mape, 1e-9);
  }
}

TEST(StreamingLooTest, CollectPointsOffKeepsReportsAndDropsVectors) {
  const auto samples = lawful_samples(4);
  VectorSampleStream stream(samples);
  LooOptions loo;
  loo.collect_points = false;
  const LooResult lean =
      evaluate_loo("convmeter-fwd-only", stream, PredictorOptions{}, loo);
  const LooResult full = evaluate_loo("convmeter-fwd-only", samples);
  ASSERT_EQ(lean.per_group.size(), full.per_group.size());
  for (std::size_t g = 0; g < lean.per_group.size(); ++g) {
    EXPECT_TRUE(lean.per_group[g].predicted.empty());
    EXPECT_NEAR(lean.per_group[g].errors.mape, full.per_group[g].errors.mape,
                1e-12);
    EXPECT_NEAR(lean.per_group[g].errors.r2, full.per_group[g].errors.r2,
                1e-9);
  }
  EXPECT_NEAR(lean.pooled.mape, full.pooled.mape, 1e-12);
}

TEST(StreamingLooTest, TrainingFamilyStreamsToo) {
  const auto samples = lawful_samples(4);
  PredictorOptions options;
  const LooResult r = evaluate_loo("convmeter", samples, options);
  EXPECT_EQ(r.per_group.size(), 4u);
  EXPECT_GT(r.pooled.r2, 0.99);
}

TEST(StreamFitTest, StreamAndVectorFitsAreIdentical) {
  auto samples = lawful_samples(3);
  Rng rng(31);
  for (auto& s : samples) s.t_infer *= 1.0 + rng.uniform(-0.02, 0.02);

  for (const char* family :
       {"convmeter-fwd-only", "convmeter", "flops-only", "inputs-only"}) {
    const auto via_vector = make_predictor(family);
    via_vector->fit(samples);
    const auto via_stream = make_predictor(family);
    VectorSampleStream stream(samples);
    via_stream->fit(stream);
    for (const auto& s : samples) {
      EXPECT_DOUBLE_EQ(via_vector->predict(s), via_stream->predict(s))
          << family;
    }
  }
}

}  // namespace
}  // namespace convmeter
