// Million-sample streaming pipeline test (its own binary so the peak-RSS
// assertion measures this process alone): a 10^6-sample simulated campaign
// streams into a binary shard with collect=false, then ConvMeter fits and
// the LOO harness evaluates straight off the shard. Nothing in the chain
// materializes the sample set, and the getrusage peak-RSS bound at the end
// proves it — a materialized pipeline holds ~200 MB of RuntimeSamples
// (plus CSV text) and blows the bound.
#include <gtest/gtest.h>

#include <sys/resource.h>

#include <cmath>
#include <cstdint>
#include <filesystem>
#include <string>

#include "backend/sim_backend.hpp"
#include "collect/campaign.hpp"
#include "collect/store/store.hpp"
#include "core/convmeter.hpp"
#include "predict/evaluate.hpp"

namespace convmeter {
namespace {

long peak_rss_kb() {
  struct rusage usage {};
  getrusage(RUSAGE_SELF, &usage);
  return usage.ru_maxrss;  // kilobytes on Linux
}

TEST(StreamingScaleTest, MillionSampleCampaignFitAndLooInBoundedMemory) {
  const std::string shard =
      ::testing::TempDir() + "/streaming_scale_million.cms";

  // 2 models x 1 image x 500 batch sizes x 1000 repetitions = 10^6 samples.
  InferenceSweep sweep;
  sweep.models = {"alexnet", "squeezenet1_1"};
  sweep.image_sizes = {64};
  sweep.batch_sizes.clear();
  for (std::int64_t b = 1; b <= 500; ++b) sweep.batch_sizes.push_back(b);
  sweep.repetitions = 1000;

  SimInferenceBackend sim(a100_80gb());
  std::uint64_t written = 0;
  {
    ShardWriter writer(shard);
    ShardSampleSink sink(writer);
    CampaignOptions options;
    options.sink = &sink;
    options.collect = false;  // nothing materializes
    run_inference_campaign(sim, sweep, options);
    writer.flush();
    written = writer.record_count();
  }
  ASSERT_EQ(written, 1000000u);

  // Streaming fit straight off the shard.
  {
    StoreSampleStream stream(shard);
    const ConvMeter model = ConvMeter::fit_inference(stream);
    QueryPoint q;
    q.metrics_b1.flops = 2e9;
    q.metrics_b1.conv_inputs = 4e6;
    q.metrics_b1.conv_outputs = 5e6;
    q.per_device_batch = 32;
    EXPECT_GT(model.predict_inference(q), 0.0);
  }

  // Group-aware streaming LOO: two passes of I/O, two accumulator solves.
  {
    StoreSampleStream stream(shard);
    LooOptions loo;
    loo.collect_points = false;
    const LooResult r =
        evaluate_loo("convmeter-fwd-only", stream, PredictorOptions{}, loo);
    EXPECT_EQ(r.per_group.size(), 2u);
    EXPECT_EQ(r.pooled.count, 1000000u);
    EXPECT_TRUE(std::isfinite(r.pooled.mape));
  }

  // The entire campaign -> fit -> LOO chain must stay far below what a
  // materialized vector<RuntimeSample> of 10^6 samples would occupy.
  const long peak_kb = peak_rss_kb();
  EXPECT_LT(peak_kb, 192 * 1024L)
      << "streaming pipeline peaked at " << peak_kb / 1024 << " MB";

  std::filesystem::remove(shard);
}

}  // namespace
}  // namespace convmeter
