// Round-trip tests for the graph text format, parameterized over the whole
// model zoo: parse(serialize(g)) must reproduce g exactly.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include <fstream>

#include "graph/serialize.hpp"
#include "graph/shape_inference.hpp"
#include "models/zoo.hpp"

namespace convmeter {
namespace {

void expect_graphs_equal(const Graph& a, const Graph& b) {
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(a.name(), b.name());
  EXPECT_EQ(a.input_channels(), b.input_channels());
  for (std::size_t i = 0; i < a.size(); ++i) {
    const Node& na = a.node(static_cast<NodeId>(i));
    const Node& nb = b.node(static_cast<NodeId>(i));
    EXPECT_EQ(na.name, nb.name);
    EXPECT_EQ(na.kind, nb.kind);
    EXPECT_EQ(na.inputs, nb.inputs);
  }
  EXPECT_EQ(a.parameter_count(), b.parameter_count());
}

class ZooRoundTrip : public ::testing::TestWithParam<std::string> {};

TEST_P(ZooRoundTrip, SerializeParseReproducesGraph) {
  const Graph g = models::build(GetParam());
  const std::string text = graph_to_text(g);
  const Graph back = graph_from_text(text);
  expect_graphs_equal(g, back);
  // Second round trip is byte-identical (canonical form).
  EXPECT_EQ(graph_to_text(back), text);
}

INSTANTIATE_TEST_SUITE_P(AllModels, ZooRoundTrip,
                         ::testing::ValuesIn(models::available_models()),
                         [](const auto& info) { return info.param; });

TEST(SerializeTest, MalformedHeaderThrows) {
  EXPECT_THROW(graph_from_text("nope x"), ParseError);
  EXPECT_THROW(graph_from_text(""), ParseError);
}

TEST(SerializeTest, MalformedNodeLineThrows) {
  EXPECT_THROW(graph_from_text("graph g\nnode zero"), ParseError);
}

TEST(SerializeTest, UnknownOperatorThrows) {
  EXPECT_THROW(graph_from_text("graph g\nnode 0 input warp channels=3"),
               ParseError);
}

TEST(SerializeTest, MissingAttributeThrows) {
  const std::string text =
      "graph g\nnode 0 input input channels=3\n"
      "node 1 c conv2d inputs=0 in=3 out=8\n";  // kernel attrs missing
  EXPECT_THROW(graph_from_text(text), ParseError);
}

TEST(SerializeTest, OutOfOrderIdsThrow) {
  const std::string text =
      "graph g\nnode 0 input input channels=3\n"
      "node 5 a activation inputs=0 fn=relu\n";
  EXPECT_THROW(graph_from_text(text), ParseError);
}

TEST(SerializeTest, FileRoundTrip) {
  const Graph g = models::build("resnet18");
  const std::string path = ::testing::TempDir() + "/resnet18.graph";
  save_graph(g, path);
  const Graph back = load_graph(path);
  expect_graphs_equal(g, back);
}

TEST(SerializeTest, ValidatesParsedGraph) {
  // Two sinks: node 1 and node 2 both unconsumed.
  const std::string text =
      "graph g\nnode 0 input input channels=3\n"
      "node 1 a activation inputs=0 fn=relu\n"
      "node 2 b activation inputs=0 fn=relu\n";
  EXPECT_THROW(graph_from_text(text), InvalidArgument);
}

}  // namespace
}  // namespace convmeter

#include "graph/dot.hpp"

namespace convmeter {
namespace {

TEST(DotExportTest, ContainsEveryNodeAndEdge) {
  const Graph g = models::build("resnet18");
  const std::string dot = graph_to_dot(g);
  EXPECT_NE(dot.find("digraph \"resnet18\""), std::string::npos);
  // Every node id appears as a declaration; every edge as an arrow.
  std::size_t edges = 0;
  for (const auto& n : g.nodes()) {
    EXPECT_NE(dot.find("n" + std::to_string(n.id) + " [label="),
              std::string::npos);
    edges += n.inputs.size();
  }
  std::size_t arrows = 0;
  for (std::size_t pos = dot.find(" -> "); pos != std::string::npos;
       pos = dot.find(" -> ", pos + 1)) {
    ++arrows;
  }
  EXPECT_EQ(arrows, edges);
}

TEST(DotExportTest, ShapesIncludedWhenProvided) {
  const Graph g = models::build("squeezenet1_1");
  const ShapeMap shapes = infer_shapes(g, Shape::nchw(1, 3, 64, 64));
  const std::string dot = graph_to_dot(g, shapes);
  EXPECT_NE(dot.find("(1, 3, 64, 64)"), std::string::npos);
}

TEST(DotExportTest, ShapeMapSizeChecked) {
  const Graph g = models::build("alexnet");
  EXPECT_THROW(graph_to_dot(g, ShapeMap{}), InvalidArgument);
}

TEST(DotExportTest, FileExport) {
  const std::string path = ::testing::TempDir() + "/g.dot";
  save_dot(models::build("alexnet"), path);
  std::ifstream f(path);
  EXPECT_TRUE(static_cast<bool>(f));
}

}  // namespace
}  // namespace convmeter
