// Binary sample store tests: record round trips, append/torn-write
// recovery, deterministic shard merging, CSV import/export, and the
// adversarial corpus in tests/data/store/ (every broken shard must fail
// with a clear ParseError — never crash, never silently skip records).
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "collect/sample.hpp"
#include "collect/store/store.hpp"
#include "common/error.hpp"

namespace convmeter {
namespace {

std::string corpus(const std::string& name) {
  return std::string(CM_STORE_CORPUS_DIR) + "/" + name;
}

std::string temp_path(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

RuntimeSample make_sample(const std::string& model, std::int64_t batch) {
  RuntimeSample s;
  s.model = model;
  s.device = "test-device";
  s.image_size = 64;
  s.global_batch = batch;
  s.num_devices = 1;
  s.num_nodes = 1;
  s.flops1 = 1.25e9;
  s.inputs1 = 2.5e6;
  s.outputs1 = 3.5e6;
  s.weights = 4.5e6;
  s.layers = 8.0;
  s.t_infer = 0.0125;
  s.t_fwd = 0.004;
  s.t_bwd = 0.008;
  s.t_grad = 0.002;
  s.t_step = 0.015;
  s.peak_mem_bytes = 6.5e6;
  return s;
}

void expect_samples_equal(const RuntimeSample& a, const RuntimeSample& b) {
  EXPECT_EQ(a.model, b.model);
  EXPECT_EQ(a.device, b.device);
  EXPECT_EQ(a.image_size, b.image_size);
  EXPECT_EQ(a.global_batch, b.global_batch);
  EXPECT_EQ(a.num_devices, b.num_devices);
  EXPECT_EQ(a.num_nodes, b.num_nodes);
  EXPECT_EQ(a.flops1, b.flops1);
  EXPECT_EQ(a.t_infer, b.t_infer);
  EXPECT_EQ(a.t_step, b.t_step);
  EXPECT_EQ(a.peak_mem_bytes, b.peak_mem_bytes);
}

TEST(SampleRecordTest, RoundTripsThroughRecord) {
  const RuntimeSample s = make_sample("resnet18", 16);
  const store::SampleRecord r = sample_to_record(s, 42, 3);
  EXPECT_EQ(r.point_index, 42u);
  EXPECT_EQ(r.repetition, 3u);
  expect_samples_equal(record_to_sample(r), s);
}

TEST(SampleRecordTest, RejectsOverlongStrings) {
  RuntimeSample s = make_sample("x", 1);
  s.model = std::string(store::kModelFieldSize, 'a');  // no room for NUL
  EXPECT_THROW(sample_to_record(s, 0, 0), InvalidArgument);
  s = make_sample("x", 1);
  s.device = std::string(store::kDeviceFieldSize, 'd');
  EXPECT_THROW(sample_to_record(s, 0, 0), InvalidArgument);
}

TEST(ShardWriterTest, WriteReadRoundTrip) {
  const std::string path = temp_path("cm_store_roundtrip.cms");
  {
    ShardWriter writer(path);
    writer.append(make_sample("alexnet", 1), 0, 0);
    writer.append(make_sample("alexnet", 16), 1, 0);
    writer.append(make_sample("vgg16", 16), 2, 0);
    writer.flush();
    EXPECT_EQ(writer.record_count(), 3u);
  }
  SampleReader reader(path);
  EXPECT_EQ(reader.record_count(), 3u);
  RuntimeSample s;
  ASSERT_TRUE(reader.next(s));
  expect_samples_equal(s, make_sample("alexnet", 1));
  ASSERT_TRUE(reader.next(s));
  ASSERT_TRUE(reader.next(s));
  expect_samples_equal(s, make_sample("vgg16", 16));
  EXPECT_FALSE(reader.next(s));
  reader.reset();
  ASSERT_TRUE(reader.next(s));
  expect_samples_equal(s, make_sample("alexnet", 1));
  std::filesystem::remove(path);
}

TEST(ShardWriterTest, AppendDropsTornTrailingBytes) {
  const std::string path = temp_path("cm_store_torn.cms");
  {
    ShardWriter writer(path);
    writer.append(make_sample("alexnet", 1), 0, 0);
    writer.flush();
  }
  // An interrupted writer leaves bytes past the durable record_count.
  {
    std::ofstream torn(path, std::ios::binary | std::ios::app);
    torn.write("torn partial record bytes", 25);
  }
  {
    ShardWriter writer(path, /*append=*/true);
    EXPECT_EQ(writer.record_count(), 1u);  // torn bytes are not records
    writer.append(make_sample("alexnet", 16), 1, 0);
    writer.flush();
  }
  SampleReader reader(path);
  EXPECT_EQ(reader.record_count(), 2u);
  RuntimeSample s;
  ASSERT_TRUE(reader.next(s));
  ASSERT_TRUE(reader.next(s));  // CRC of the post-resume record still valid
  EXPECT_EQ(s.global_batch, 16);
  EXPECT_FALSE(reader.next(s));
  std::filesystem::remove(path);
}

TEST(ShardWriterTest, DestructorFlushesPendingRecords) {
  const std::string path = temp_path("cm_store_dtor_flush.cms");
  {
    ShardWriter writer(path);
    writer.append(make_sample("alexnet", 1), 0, 0);
    writer.append(make_sample("alexnet", 16), 1, 0);
    // No explicit flush: a clean close must still make both durable (only
    // a crashed process leaves torn bytes behind).
  }
  EXPECT_EQ(shard_record_count(path), 2u);
  std::filesystem::remove(path);
}

TEST(MergeShardsTest, MergesByPointIndexDeterministically) {
  const std::string even = temp_path("cm_store_even.cms");
  const std::string odd = temp_path("cm_store_odd.cms");
  const std::string whole = temp_path("cm_store_whole.cms");
  const std::string merged = temp_path("cm_store_merged.cms");
  {
    ShardWriter we(even);
    ShardWriter wo(odd);
    ShardWriter ww(whole);
    for (std::uint64_t p = 0; p < 6; ++p) {
      for (std::uint32_t rep = 0; rep < 2; ++rep) {
        const RuntimeSample s =
            make_sample("m" + std::to_string(p), static_cast<std::int64_t>(p));
        (p % 2 == 0 ? we : wo).append(s, p, rep);
        ww.append(s, p, rep);
      }
    }
    we.flush();
    wo.flush();
    ww.flush();
  }
  merge_shards({odd, even}, merged);  // input order must not matter

  std::ifstream a(whole, std::ios::binary);
  std::ifstream b(merged, std::ios::binary);
  const std::string bytes_a((std::istreambuf_iterator<char>(a)),
                            std::istreambuf_iterator<char>());
  const std::string bytes_b((std::istreambuf_iterator<char>(b)),
                            std::istreambuf_iterator<char>());
  EXPECT_EQ(bytes_a, bytes_b) << "merged shards must be byte-identical to "
                                 "the unsharded run";

  // Overlapping shards (duplicate merge keys) are an error, not a dedup.
  EXPECT_THROW(merge_shards({even, even}, temp_path("cm_store_dup.cms")),
               ParseError);
  for (const auto& p : {even, odd, whole, merged}) {
    std::filesystem::remove(p);
  }
}

TEST(StoreSampleStreamTest, ReadsDirectoryOfShards) {
  const auto dir = std::filesystem::temp_directory_path() / "cm_store_dir";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directory(dir);
  {
    ShardWriter a((dir / "a.cms").string());
    a.append(make_sample("alexnet", 1), 0, 0);
    a.flush();
    ShardWriter b((dir / "b.cms").string());
    b.append(make_sample("vgg16", 2), 1, 0);
    b.append(make_sample("vgg16", 4), 2, 0);
    b.flush();
  }
  StoreSampleStream stream(dir.string());
  EXPECT_EQ(stream.record_count(), 3u);
  RuntimeSample s;
  std::vector<std::string> models;
  while (stream.next(s)) models.push_back(s.model);
  EXPECT_EQ(models, (std::vector<std::string>{"alexnet", "vgg16", "vgg16"}));
  stream.reset();
  std::size_t again = 0;
  while (stream.next(s)) ++again;
  EXPECT_EQ(again, 3u);
  std::filesystem::remove_all(dir);
}

TEST(MmapReaderTest, ByteIdenticalToStreamingReader) {
  // Satellite guarantee: the mmap fast path and the streaming fallback see
  // the same record bytes and yield the same samples, in the same order.
  const std::string path = temp_path("cm_store_mmap.cms");
  {
    ShardWriter writer(path);
    for (int i = 0; i < 5; ++i) {
      RuntimeSample s = make_sample("m" + std::to_string(i), 1 << i);
      s.peak_mem_bytes = 1.0e6 * (i + 1);
      writer.append(s, static_cast<std::uint64_t>(i), 0);
    }
    writer.flush();
  }
  const std::unique_ptr<ShardReader> fast = open_shard_reader(path, true);
  const std::unique_ptr<ShardReader> slow = open_shard_reader(path, false);
  if (MmapSampleReader::supported()) {
    EXPECT_NE(dynamic_cast<MmapSampleReader*>(fast.get()), nullptr);
  }
  EXPECT_NE(dynamic_cast<SampleReader*>(slow.get()), nullptr);
  ASSERT_EQ(fast->record_count(), slow->record_count());
  store::SampleRecord a{};
  store::SampleRecord b{};
  std::size_t n = 0;
  while (slow->next_record(b)) {
    ASSERT_TRUE(fast->next_record(a));
    EXPECT_EQ(std::memcmp(&a, &b, sizeof(a)), 0)
        << "record " << n << " differs between readers";
    ++n;
  }
  EXPECT_FALSE(fast->next_record(a));
  EXPECT_EQ(n, 5u);
  // reset() replays both readers from record 0.
  fast->reset();
  slow->reset();
  RuntimeSample sf;
  RuntimeSample ss;
  ASSERT_TRUE(fast->next(sf));
  ASSERT_TRUE(slow->next(ss));
  expect_samples_equal(sf, ss);
  EXPECT_EQ(sf.peak_mem_bytes, 1.0e6);
  std::filesystem::remove(path);
}

TEST(MmapReaderTest, RejectsBrokenShardsLikeStreaming) {
  // Corrupt/foreign shards must get the same verdict from either reader;
  // the factory propagates those instead of falling back.
  if (!MmapSampleReader::supported()) GTEST_SKIP() << "no POSIX mmap";
  EXPECT_THROW(MmapSampleReader r(corpus("truncated.cms")), ParseError);
  EXPECT_THROW(MmapSampleReader r(corpus("bad_version.cms")), ParseError);
  EXPECT_THROW(MmapSampleReader r(corpus("bad_record_size.cms")), ParseError);
  EXPECT_THROW(MmapSampleReader r(corpus("zero_records.cms")), ParseError);
  EXPECT_THROW(open_shard_reader(corpus("bad_magic.cms")), ParseError);
  MmapSampleReader reader(corpus("bad_crc.cms"));  // header itself is fine
  RuntimeSample s;
  EXPECT_TRUE(reader.next(s));  // record 0 intact
  EXPECT_THROW(reader.next(s), ParseError);
}

TEST(CsvBridgeTest, CsvToBinaryToCsvIsBitIdentical) {
  // Satellite guarantee: the store's shortest-round-trip double formatting
  // makes CSV → binary → CSV the identity on the text.
  const std::string csv = temp_path("cm_store_in.csv");
  const std::string shard = temp_path("cm_store_import.cms");
  const std::string csv2 = temp_path("cm_store_out.csv");
  std::vector<RuntimeSample> samples;
  RuntimeSample s = make_sample("alexnet", 16);
  s.t_infer = 0.1;  // not exactly representable: formatting must round-trip
  s.flops1 = 1.0 / 3.0;
  samples.push_back(s);
  samples.push_back(make_sample("vgg16", 64));
  save_samples(samples, csv);

  import_csv_to_shard(csv, shard);
  export_store_to_csv(shard, csv2);

  std::ifstream a(csv);
  std::ifstream b(csv2);
  const std::string text_a((std::istreambuf_iterator<char>(a)),
                           std::istreambuf_iterator<char>());
  const std::string text_b((std::istreambuf_iterator<char>(b)),
                           std::istreambuf_iterator<char>());
  EXPECT_EQ(text_a, text_b);
  for (const auto& p : {csv, shard, csv2}) std::filesystem::remove(p);
}

TEST(StoreInfoTest, SummarizesShards) {
  const std::string path = temp_path("cm_store_info.cms");
  {
    ShardWriter w(path);
    w.append(make_sample("vgg16", 1), 3, 0);
    w.append(make_sample("alexnet", 1), 4, 0);
    w.append(make_sample("alexnet", 2), 5, 0);
    w.flush();
  }
  const StoreInfo info = store_info(path);
  EXPECT_EQ(info.shards, 1u);
  EXPECT_EQ(info.records, 3u);
  EXPECT_EQ(info.first_point, 3u);
  EXPECT_EQ(info.last_point, 5u);
  EXPECT_EQ(info.models, (std::vector<std::string>{"alexnet", "vgg16"}));
  std::filesystem::remove(path);
}

// ---- Adversarial corpus ---------------------------------------------------
// Files built by tests/data/store/make_corpus.py, each broken one way.

TEST(StoreCorpusTest, ValidShardReads) {
  SampleReader reader(corpus("valid.cms"));
  EXPECT_EQ(reader.record_count(), 3u);
  RuntimeSample s;
  std::size_t n = 0;
  while (reader.next(s)) {
    EXPECT_EQ(s.model, "alexnet");
    ++n;
  }
  EXPECT_EQ(n, 3u);
}

TEST(StoreCorpusTest, TruncatedShardFailsLoudly) {
  EXPECT_THROW(SampleReader reader(corpus("truncated.cms")), ParseError);
}

TEST(StoreCorpusTest, CorruptRecordFailsItsCrc) {
  SampleReader reader(corpus("bad_crc.cms"));  // header itself is fine
  RuntimeSample s;
  EXPECT_TRUE(reader.next(s));  // record 0 intact
  EXPECT_THROW(reader.next(s), ParseError);
}

TEST(StoreCorpusTest, WrongVersionRejected) {
  EXPECT_THROW(SampleReader reader(corpus("bad_version.cms")), ParseError);
}

TEST(StoreCorpusTest, ForeignEndiannessRejected) {
  EXPECT_THROW(SampleReader reader(corpus("bad_endian.cms")), ParseError);
}

TEST(StoreCorpusTest, BadMagicRejected) {
  EXPECT_THROW(SampleReader reader(corpus("bad_magic.cms")), ParseError);
}

TEST(StoreCorpusTest, ForeignRecordSizeRejected) {
  EXPECT_THROW(SampleReader reader(corpus("bad_record_size.cms")), ParseError);
}

TEST(StoreCorpusTest, ZeroRecordShardRejectedByReaderOnly) {
  // A freshly created checkpoint journal is a zero-record shard: the count
  // probe accepts it, a sample reader refuses it.
  EXPECT_EQ(shard_record_count(corpus("zero_records.cms")), 0u);
  EXPECT_THROW(SampleReader reader(corpus("zero_records.cms")), ParseError);
}

TEST(StoreCorpusTest, UnterminatedStringFieldRejected) {
  SampleReader reader(corpus("unterminated_string.cms"));
  RuntimeSample s;
  EXPECT_TRUE(reader.next(s));
  EXPECT_TRUE(reader.next(s));
  EXPECT_THROW(reader.next(s), ParseError);  // record 2's model lacks a NUL
}

TEST(StoreCorpusTest, MissingFileRejected) {
  EXPECT_THROW(SampleReader reader(corpus("does_not_exist.cms")), ParseError);
  EXPECT_THROW(StoreSampleStream stream(corpus("does_not_exist.cms")),
               InvalidArgument);
}

}  // namespace
}  // namespace convmeter
