// Real-training tests: the loss function, gradient flow through DAG
// structures (residual, SE, concat), and end-to-end "loss goes down" runs
// on tiny ConvNets — the runnable counterpart of the simulated pipeline.
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "exec/trainer.hpp"
#include "models/zoo.hpp"

namespace convmeter {
namespace {

/// Tiny classifier: conv-bn-relu-pool-fc over `classes` classes.
Graph tiny_convnet(std::int64_t classes) {
  Graph g("tiny");
  NodeId x = g.input(1);
  x = g.conv2d("conv", x, Conv2dAttrs::square(1, 4, 3, 1, 1));
  x = g.batch_norm("bn", x, 4);
  x = g.activation("relu", x, ActKind::kReLU);
  x = g.adaptive_avg_pool("pool", x, 2, 2);
  x = g.flatten("flat", x);
  g.linear("fc", x, LinearAttrs{16, classes, true});
  return g;
}

/// Residual + squeeze-excite + concat exercise every DAG backward path.
Graph dag_convnet(std::int64_t classes) {
  Graph g("dag");
  NodeId x = g.input(2);
  NodeId a = g.conv2d("c1", x, Conv2dAttrs::square(2, 4, 3, 1, 1));
  a = g.activation("r1", a, ActKind::kReLU);
  NodeId b = g.conv2d("c2", a, Conv2dAttrs::square(4, 4, 3, 1, 1));
  b = g.add("res", b, a);                     // residual
  NodeId s = g.adaptive_avg_pool("se_pool", b, 1, 1);
  s = g.conv2d("se_fc", s, Conv2dAttrs::square(4, 4, 1, 1, 0, 1, true));
  s = g.activation("se_gate", s, ActKind::kSigmoid);
  b = g.multiply("se_scale", b, s);           // broadcast multiply
  NodeId c = g.conv2d("c3", x, Conv2dAttrs::square(2, 4, 1));
  NodeId cat = g.concat("cat", {b, c});       // concat
  cat = g.adaptive_avg_pool("pool", cat, 1, 1);
  cat = g.flatten("flat", cat);
  g.linear("fc", cat, LinearAttrs{8, classes, true});
  return g;
}

/// A separable synthetic task: the label is which image quadrant carries
/// the bright blob.
void make_batch(std::int64_t n, std::int64_t channels, std::int64_t size,
                std::uint64_t seed, Tensor* input, std::vector<int>* labels) {
  *input = Tensor(Shape::nchw(n, channels, size, size));
  input->fill_random(seed);
  labels->clear();
  Rng rng(seed ^ 0xabcd);
  const std::int64_t half = size / 2;
  for (std::int64_t b = 0; b < n; ++b) {
    const int label = static_cast<int>(rng.uniform_int(0, 3));
    labels->push_back(label);
    const std::int64_t h0 = (label / 2) * half;
    const std::int64_t w0 = (label % 2) * half;
    for (std::int64_t c = 0; c < channels; ++c) {
      for (std::int64_t h = h0; h < h0 + half; ++h) {
        for (std::int64_t w = w0; w < w0 + half; ++w) {
          input->at4(b, c, h, w) += 3.0f;
        }
      }
    }
  }
}

TEST(LossTest, UniformLogitsGiveLogClasses) {
  Tensor logits(Shape{2, 4}, 0.0f);
  const double loss = softmax_cross_entropy(logits, {0, 3}, nullptr);
  EXPECT_NEAR(loss, std::log(4.0), 1e-6);
}

TEST(LossTest, PerfectLogitsGiveNearZeroLoss) {
  Tensor logits(Shape{2, 3}, 0.0f);
  logits.at(0) = 50.0f;      // sample 0 -> class 0
  logits.at(3 + 2) = 50.0f;  // sample 1 -> class 2
  const double loss = softmax_cross_entropy(logits, {0, 2}, nullptr);
  EXPECT_LT(loss, 1e-6);
}

TEST(LossTest, GradientMatchesFiniteDifferences) {
  Tensor logits(Shape{3, 4});
  logits.fill_random(1);
  const std::vector<int> labels = {1, 3, 0};
  Tensor grad;
  softmax_cross_entropy(logits, labels, &grad);

  constexpr float eps = 1e-3f;
  for (std::size_t i = 0; i < 12; ++i) {
    const float saved = logits.at(i);
    logits.at(i) = saved + eps;
    const double up = softmax_cross_entropy(logits, labels, nullptr);
    logits.at(i) = saved - eps;
    const double down = softmax_cross_entropy(logits, labels, nullptr);
    logits.at(i) = saved;
    EXPECT_NEAR(grad.at(i), (up - down) / (2 * eps), 1e-4);
  }
}

TEST(LossTest, GradientSumsToZeroPerSample) {
  Tensor logits(Shape{2, 5});
  logits.fill_random(2);
  Tensor grad;
  softmax_cross_entropy(logits, {4, 0}, &grad);
  for (std::size_t b = 0; b < 2; ++b) {
    double row = 0.0;
    for (std::size_t c = 0; c < 5; ++c) row += grad.at(b * 5 + c);
    EXPECT_NEAR(row, 0.0, 1e-6);
  }
}

TEST(LossTest, RejectsBadLabels) {
  Tensor logits(Shape{1, 3});
  EXPECT_THROW(softmax_cross_entropy(logits, {3}, nullptr), InvalidArgument);
  EXPECT_THROW(softmax_cross_entropy(logits, {0, 1}, nullptr),
               InvalidArgument);
}

TEST(TrainerTest, LossDecreasesOnTinyConvNet) {
  TrainerConfig cfg;
  cfg.learning_rate = 5e-3;
  Trainer trainer(tiny_convnet(4), cfg);

  Tensor input;
  std::vector<int> labels;
  make_batch(16, 1, 8, 42, &input, &labels);

  const double first = trainer.step(input, labels).loss;
  double last = first;
  for (int i = 0; i < 30; ++i) last = trainer.step(input, labels).loss;
  EXPECT_LT(last, 0.5 * first);
}

TEST(TrainerTest, ReachesHighTrainAccuracyOnSeparableTask) {
  TrainerConfig cfg;
  cfg.learning_rate = 1e-2;
  Trainer trainer(tiny_convnet(4), cfg);

  Tensor input;
  std::vector<int> labels;
  make_batch(32, 1, 8, 7, &input, &labels);
  RealStepResult r;
  for (int i = 0; i < 60; ++i) r = trainer.step(input, labels);
  EXPECT_GT(r.accuracy, 0.9);
}

TEST(TrainerTest, DagGraphTrains) {
  TrainerConfig cfg;
  cfg.learning_rate = 5e-3;
  Trainer trainer(dag_convnet(4), cfg);

  Tensor input;
  std::vector<int> labels;
  make_batch(16, 2, 8, 11, &input, &labels);

  const double first = trainer.step(input, labels).loss;
  double last = first;
  for (int i = 0; i < 40; ++i) last = trainer.step(input, labels).loss;
  EXPECT_LT(last, first);
}

TEST(TrainerTest, SgdAlsoLearns) {
  TrainerConfig cfg;
  cfg.optimizer = TrainerConfig::Optimizer::kSgd;
  cfg.learning_rate = 0.05;
  Trainer trainer(tiny_convnet(4), cfg);

  Tensor input;
  std::vector<int> labels;
  make_batch(16, 1, 8, 13, &input, &labels);
  const double first = trainer.step(input, labels).loss;
  double last = first;
  for (int i = 0; i < 40; ++i) last = trainer.step(input, labels).loss;
  EXPECT_LT(last, first);
}

TEST(TrainerTest, PhaseTimingsArePopulated) {
  Trainer trainer(tiny_convnet(4));
  Tensor input;
  std::vector<int> labels;
  make_batch(8, 1, 8, 17, &input, &labels);
  const RealStepResult r = trainer.step(input, labels);
  EXPECT_GT(r.fwd_seconds, 0.0);
  EXPECT_GT(r.bwd_seconds, 0.0);
  EXPECT_GT(r.update_seconds, 0.0);
}

TEST(TrainerTest, EvaluateDoesNotChangeParameters) {
  Trainer trainer(tiny_convnet(4));
  Tensor input;
  std::vector<int> labels;
  make_batch(8, 1, 8, 19, &input, &labels);

  const Graph& g = trainer.graph();
  const Tensor before = trainer.parameters(g.find("conv"))[0];
  const RealStepResult eval = trainer.evaluate(input, labels);
  EXPECT_GT(eval.loss, 0.0);
  EXPECT_EQ(eval.bwd_seconds, 0.0);
  const Tensor after = trainer.parameters(g.find("conv"))[0];
  EXPECT_EQ(before.max_abs_diff(after), 0.0f);
}

TEST(TrainerTest, StepChangesParameters) {
  Trainer trainer(tiny_convnet(4));
  Tensor input;
  std::vector<int> labels;
  make_batch(8, 1, 8, 23, &input, &labels);

  const Graph& g = trainer.graph();
  const Tensor before = trainer.parameters(g.find("fc"))[0];
  trainer.step(input, labels);
  const Tensor after = trainer.parameters(g.find("fc"))[0];
  EXPECT_GT(before.max_abs_diff(after), 0.0f);
}

TEST(TrainerTest, DeterministicForSeed) {
  TrainerConfig cfg;
  Tensor input;
  std::vector<int> labels;
  make_batch(8, 1, 8, 29, &input, &labels);

  Trainer a(tiny_convnet(4), cfg);
  Trainer b(tiny_convnet(4), cfg);
  for (int i = 0; i < 3; ++i) {
    EXPECT_DOUBLE_EQ(a.step(input, labels).loss, b.step(input, labels).loss);
  }
}

TEST(TrainerTest, BackwardCostsMoreThanForward) {
  // The premise behind the simulator's 2x backward factor, checked on real
  // kernels (averaged to damp scheduler noise).
  Trainer trainer(tiny_convnet(4));
  Tensor input;
  std::vector<int> labels;
  make_batch(32, 1, 16, 31, &input, &labels);
  double fwd = 0.0;
  double bwd = 0.0;
  for (int i = 0; i < 5; ++i) {
    const RealStepResult r = trainer.step(input, labels);
    fwd += r.fwd_seconds;
    bwd += r.bwd_seconds;
  }
  EXPECT_GT(bwd, fwd);
}

}  // namespace
}  // namespace convmeter

namespace convmeter {
namespace {

TEST(TrainerTest, ShuffleNetStyleGraphTrains) {
  // Channel split + shuffle must be differentiable end to end.
  Graph g("shuffle-unit");
  NodeId x = g.input(4);
  NodeId left = g.slice_channels("split_l", x, 0, 2);
  NodeId right = g.slice_channels("split_r", x, 2, 4);
  right = g.conv2d("c", right, Conv2dAttrs::square(2, 2, 3, 1, 1));
  right = g.activation("r", right, ActKind::kReLU);
  NodeId cat = g.concat("cat", {left, right});
  cat = g.channel_shuffle("shuffle", cat, 2);
  cat = g.adaptive_avg_pool("pool", cat, 1, 1);
  cat = g.flatten("flat", cat);
  g.linear("fc", cat, LinearAttrs{4, 4, true});

  TrainerConfig cfg;
  cfg.learning_rate = 1e-2;
  Trainer trainer(g, cfg);
  Tensor input;
  std::vector<int> labels;
  make_batch(16, 4, 8, 77, &input, &labels);
  const double first = trainer.step(input, labels).loss;
  double last = first;
  for (int i = 0; i < 40; ++i) last = trainer.step(input, labels).loss;
  EXPECT_LT(last, first);
}

TEST(TrainerTest, RealShuffleNetForwardWorks) {
  // The zoo's actual shufflenet executes end to end at small resolution.
  Trainer trainer(models::build("shufflenet_v2_x0_5"));
  Tensor input(Shape::nchw(1, 3, 64, 64));
  input.fill_random(11);
  const RealStepResult r = trainer.evaluate(input, {0});
  EXPECT_GT(r.loss, 0.0);
}

}  // namespace
}  // namespace convmeter
