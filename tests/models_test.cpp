// Model zoo tests: every model validates, produces (N, 1000) logits at its
// default resolution, and the flagship architectures match the published
// torchvision parameter counts exactly.
#include <gtest/gtest.h>

#include "graph/shape_inference.hpp"
#include "metrics/metrics.hpp"
#include "models/zoo.hpp"

namespace convmeter {
namespace {

class ZooModelTest : public ::testing::TestWithParam<std::string> {};

TEST_P(ZooModelTest, ValidatesAndClassifies1000Classes) {
  const Graph g = models::build(GetParam());
  EXPECT_NO_THROW(g.validate());
  const std::int64_t image = models::default_image_size(GetParam());
  const ShapeMap shapes = infer_shapes(g, Shape::nchw(2, 3, image, image));
  EXPECT_EQ(shapes[static_cast<std::size_t>(g.output_id())],
            Shape({2, 1000}));
}

TEST_P(ZooModelTest, HasPositiveMetrics) {
  const Graph g = models::build(GetParam());
  const GraphMetrics m =
      compute_metrics_b1(g, models::default_image_size(GetParam()));
  EXPECT_GT(m.flops, 0.0);
  EXPECT_GT(m.conv_inputs, 0.0);
  EXPECT_GT(m.conv_outputs, 0.0);
  EXPECT_GT(m.weights, 0.0);
  EXPECT_GT(m.layers, 0.0);
}

TEST_P(ZooModelTest, NameMatchesRegistry) {
  EXPECT_EQ(models::build(GetParam()).name(), GetParam());
  EXPECT_TRUE(models::is_available(GetParam()));
}

INSTANTIATE_TEST_SUITE_P(AllModels, ZooModelTest,
                         ::testing::ValuesIn(models::available_models()),
                         [](const auto& info) { return info.param; });

/// Published torchvision parameter counts (exact).
struct ParamGolden {
  const char* name;
  std::int64_t params;
};

class ParamCountTest : public ::testing::TestWithParam<ParamGolden> {};

TEST_P(ParamCountTest, MatchesTorchvision) {
  const Graph g = models::build(GetParam().name);
  EXPECT_EQ(g.parameter_count(), GetParam().params) << GetParam().name;
}

INSTANTIATE_TEST_SUITE_P(
    Golden, ParamCountTest,
    ::testing::Values(ParamGolden{"alexnet", 61100840},
                      ParamGolden{"vgg11", 132863336},
                      ParamGolden{"vgg16", 138357544},
                      ParamGolden{"vgg19", 143667240},
                      ParamGolden{"resnet18", 11689512},
                      ParamGolden{"resnet34", 21797672},
                      ParamGolden{"resnet50", 25557032},
                      ParamGolden{"resnet101", 44549160},
                      ParamGolden{"resnet152", 60192808},
                      ParamGolden{"wide_resnet50_2", 68883240},
                      ParamGolden{"resnext50_32x4d", 25028904},
                      ParamGolden{"squeezenet1_0", 1248424},
                      ParamGolden{"squeezenet1_1", 1235496},
                      ParamGolden{"densenet121", 7978856},
                      ParamGolden{"googlenet", 6624904},
                      ParamGolden{"shufflenet_v2_x1_0", 2278604},
                      ParamGolden{"shufflenet_v2_x0_5", 1366792},
                      ParamGolden{"mobilenet_v2", 3504872},
                      ParamGolden{"mobilenet_v3_large", 5483032},
                      ParamGolden{"mobilenet_v3_small", 2542856},
                      ParamGolden{"efficientnet_b0", 5288548}),
    [](const auto& info) { return std::string(info.param.name); });

TEST(ZooTest, UnknownModelThrows) {
  EXPECT_THROW(models::build("resnet9000"), InvalidArgument);
  EXPECT_THROW(models::default_image_size("nope"), InvalidArgument);
  EXPECT_FALSE(models::is_available("nope"));
}

TEST(ZooTest, RegistryHas37Models) {
  EXPECT_EQ(models::available_models().size(), 37u);
}

TEST(ZooTest, MixerGraphsValidateAndClassify) {
  for (const char* name : {"mlp_mixer_s_16", "mlp_mixer_b_16"}) {
    const Graph g = models::build(name);
    const ShapeMap shapes = infer_shapes(g, Shape::nchw(2, 3, 224, 224));
    EXPECT_EQ(shapes.back(), Shape({2, 1000})) << name;
  }
}

TEST(ZooTest, MixerResolutionVariantsUseTheirOwnTokenWidths) {
  for (const char* name : {"mlp_mixer_s_16_160", "mlp_mixer_b_16_160"}) {
    EXPECT_EQ(models::default_image_size(name), 160) << name;
    const Graph g = models::build(name);
    // 160/16 = 10 patches per side -> 100 tokens in the token-mixing MLP.
    const Node& fc1 = g.node(g.find("mixer.0.token.fc1"));
    EXPECT_EQ(fc1.as<LinearAttrs>().in_features, 100) << name;
    const ShapeMap shapes = infer_shapes(g, Shape::nchw(2, 3, 160, 160));
    EXPECT_EQ(shapes.back(), Shape({2, 1000})) << name;
  }
}

TEST(ZooTest, InceptionNeeds299) {
  EXPECT_EQ(models::default_image_size("inception_v3"), 299);
}

TEST(ZooTest, ResNextUsesGroupedConvs) {
  const Graph g = models::build("resnext50_32x4d");
  const Node& conv = g.node(g.find("layer1.0.conv2"));
  EXPECT_EQ(conv.as<Conv2dAttrs>().groups, 32);
}

TEST(ZooTest, WideResNetDoublesBottleneckWidth) {
  const Graph plain = models::build("resnet50");
  const Graph wide = models::build("wide_resnet50_2");
  const auto width = [](const Graph& g) {
    return g.node(g.find("layer1.0.conv1")).as<Conv2dAttrs>().out_channels;
  };
  EXPECT_EQ(width(wide), 2 * width(plain));
}

TEST(ZooTest, MobileNetV2UsesDepthwiseConvs) {
  const Graph g = models::build("mobilenet_v2");
  const Node& dw = g.node(g.find("features.2.dw"));
  const auto& a = dw.as<Conv2dAttrs>();
  EXPECT_EQ(a.groups, a.in_channels);
}

TEST(ZooTest, DenseNetGrowsInputsNotOutputs) {
  // The paper's Fig. 2 discussion: DenseNet's conv inputs grow along the
  // blocks while conv outputs stay bounded -> I must clearly exceed O.
  const GraphMetrics m = compute_metrics_b1(models::build("densenet121"), 224);
  EXPECT_GT(m.conv_inputs, 1.5 * m.conv_outputs);
}

TEST(ZooTest, EfficientNetScalesDepthAcrossVariants) {
  const Graph b0 = models::build("efficientnet_b0");
  const Graph b1 = models::build("efficientnet_b1");
  EXPECT_GT(b1.size(), b0.size());
}

TEST(ZooTest, VggDepthOrdering) {
  EXPECT_LT(models::build("vgg11").count_kind(OpKind::kConv2d),
            models::build("vgg19").count_kind(OpKind::kConv2d));
  EXPECT_EQ(models::build("vgg16").count_kind(OpKind::kConv2d), 13u);
}

TEST(ZooTest, SqueezeNetHasNoLinearLayer) {
  // SqueezeNet classifies with a 1x1 conv instead of a fully connected
  // layer — that is its parameter-count trick.
  EXPECT_EQ(models::build("squeezenet1_0").count_kind(OpKind::kLinear), 0u);
}

TEST(ZooTest, FlopsOrderingMatchesComplexity) {
  const auto flops = [](const char* name) {
    return compute_metrics_b1(models::build(name), 224).flops;
  };
  EXPECT_LT(flops("mobilenet_v2"), flops("resnet18"));
  EXPECT_LT(flops("resnet18"), flops("resnet50"));
  EXPECT_LT(flops("resnet50"), flops("vgg16"));
  EXPECT_LT(flops("alexnet"), flops("resnet18"));
}

}  // namespace
}  // namespace convmeter
