// Pipeline-partitioning tests: cut-point legality, DP balancing, and the
// pipeline time model.
#include <gtest/gtest.h>

#include "backend/sim_backend.hpp"
#include "collect/campaign.hpp"
#include "common/error.hpp"
#include "core/partition.hpp"
#include "models/zoo.hpp"

namespace convmeter {
namespace {

const ConvMeter& fitted_model() {
  static const ConvMeter model = [] {
    SimInferenceBackend sim(a100_80gb());
    InferenceSweep sweep;
    sweep.models = {"alexnet", "resnet18", "resnet50", "mobilenet_v2",
                    "vgg16", "squeezenet1_0"};
    sweep.image_sizes = {64, 128, 224};
    sweep.batch_sizes = {1, 16, 64};
    return ConvMeter::fit_inference(run_inference_campaign(sim, sweep));
  }();
  return model;
}

TEST(CutPointTest, SequentialChainCutsEverywhere) {
  Graph g("chain");
  NodeId x = g.input(3);
  x = g.conv2d("c1", x, Conv2dAttrs::square(3, 8, 3, 1, 1));
  x = g.activation("r1", x, ActKind::kReLU);
  x = g.conv2d("c2", x, Conv2dAttrs::square(8, 8, 3, 1, 1));
  g.activation("r2", x, ActKind::kReLU);
  const auto cuts = pipeline_cut_points(g, Shape::nchw(1, 3, 8, 8));
  // Every interior node of a pure chain is a legal cut.
  EXPECT_EQ(cuts.size(), 3u);  // c1, r1, c2 (sink r2 excluded)
}

TEST(CutPointTest, ResidualBlockIsAtomic) {
  Graph g("res");
  NodeId x = g.input(8);
  NodeId pre = g.activation("pre", x, ActKind::kReLU);
  NodeId y = g.conv2d("c", pre, Conv2dAttrs::square(8, 8, 3, 1, 1));
  y = g.add("add", y, pre);  // `pre` stays live across c
  g.activation("post", y, ActKind::kReLU);
  const auto cuts = pipeline_cut_points(g, Shape::nchw(1, 8, 8, 8));
  // No cut may fall between `pre` and `add` (two tensors would cross).
  for (const NodeId c : cuts) {
    EXPECT_FALSE(c > g.find("pre") && c < g.find("add"))
        << "illegal cut at node " << c;
  }
  // But cutting right after the block (at `add`) is fine.
  EXPECT_NE(std::find(cuts.begin(), cuts.end(), g.find("add")), cuts.end());
}

TEST(CutPointTest, ResNet50HasBlockBoundaryCuts) {
  const Graph g = models::build("resnet50");
  const auto cuts = pipeline_cut_points(g, Shape::nchw(1, 3, 224, 224));
  // One legal cut per residual block exit (16 blocks) plus the stem nodes.
  EXPECT_GE(cuts.size(), 16u);
  // Every block's final relu must be a legal boundary.
  EXPECT_NE(std::find(cuts.begin(), cuts.end(), g.find("layer2.3.relu3")),
            cuts.end());
}

TEST(PartitionTest, StagesCoverGraphContiguously) {
  const Graph g = models::build("resnet18");
  const PipelinePlan plan =
      partition_pipeline(g, Shape::nchw(8, 3, 224, 224), fitted_model(), 4);
  ASSERT_EQ(plan.stages.size(), 4u);
  EXPECT_EQ(plan.stages.front().entry, 0);
  EXPECT_EQ(plan.stages.back().exit, g.output_id());
  for (std::size_t s = 1; s < plan.stages.size(); ++s) {
    EXPECT_EQ(plan.stages[s].entry, plan.stages[s - 1].exit);
  }
}

TEST(PartitionTest, BottleneckIsMaxStageTime) {
  const Graph g = models::build("resnet18");
  const PipelinePlan plan =
      partition_pipeline(g, Shape::nchw(8, 3, 224, 224), fitted_model(), 3);
  double worst = 0.0;
  for (const auto& s : plan.stages) {
    worst = std::max(worst, s.predicted_seconds);
  }
  EXPECT_DOUBLE_EQ(plan.bottleneck_seconds, worst);
}

TEST(PartitionTest, MoreStagesNeverWorsenBottleneck) {
  const Graph g = models::build("resnet50");
  const Shape in = Shape::nchw(8, 3, 224, 224);
  double prev = 1e300;
  for (const int stages : {1, 2, 4, 8}) {
    const PipelinePlan plan =
        partition_pipeline(g, in, fitted_model(), stages);
    EXPECT_LE(plan.bottleneck_seconds, prev * 1.0001);
    prev = plan.bottleneck_seconds;
  }
}

TEST(PartitionTest, SingleStageEqualsWholeModelPrediction) {
  const Graph g = models::build("squeezenet1_0");
  const Shape in = Shape::nchw(4, 3, 224, 224);
  const PipelinePlan plan = partition_pipeline(g, in, fitted_model(), 1);
  ASSERT_EQ(plan.stages.size(), 1u);
  EXPECT_GT(plan.bottleneck_seconds, 0.0);
}

TEST(PartitionTest, TooManyStagesThrow) {
  Graph g("tiny");
  NodeId x = g.input(3);
  x = g.conv2d("c", x, Conv2dAttrs::square(3, 4, 3, 1, 1));
  g.activation("r", x, ActKind::kReLU);
  EXPECT_THROW(
      partition_pipeline(g, Shape::nchw(1, 3, 8, 8), fitted_model(), 5),
      InvalidArgument);
}

TEST(PipelineTimeTest, FillDrainFormula) {
  PipelinePlan plan;
  plan.stages.resize(4);
  plan.bottleneck_seconds = 2.0;
  // (M + S - 1) * bottleneck with M = 8, S = 4.
  EXPECT_DOUBLE_EQ(plan.time_for_microbatches(8), 22.0);
  EXPECT_DOUBLE_EQ(plan.time_for_microbatches(1), 8.0);
}

TEST(PipelineTimeTest, CommTermAddsBoundaryTransfer) {
  PipelinePlan plan;
  plan.stages.resize(2);
  plan.bottleneck_seconds = 1.0;
  plan.stages[0].boundary_elems = 250e6;  // 1 GB at 4 B/elem
  const double no_comm = plan.time_for_microbatches(4);
  const double with_comm = plan.time_for_microbatches(4, 1e9);  // 1 GB/s
  EXPECT_DOUBLE_EQ(no_comm, 5.0);
  EXPECT_DOUBLE_EQ(with_comm, 5.0 * (1.0 + 1.0));  // +1 s transfer per slot
}

TEST(PipelineTimeTest, Validation) {
  PipelinePlan plan;
  EXPECT_THROW(plan.time_for_microbatches(1), InvalidArgument);
  plan.stages.resize(1);
  EXPECT_THROW(plan.time_for_microbatches(0), InvalidArgument);
}

}  // namespace
}  // namespace convmeter
