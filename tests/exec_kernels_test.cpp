// Kernel correctness tests. The central property: the production
// im2col+GEMM convolution agrees with the direct reference convolution for
// a parameterized sweep of configurations (stride, padding, groups,
// rectangular kernels, dilation).
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "common/error.hpp"
#include "exec/kernels.hpp"
#include "exec/workspace.hpp"
#include "graph/shape_inference.hpp"

namespace convmeter {
namespace {

Tensor random_tensor(Shape shape, std::uint64_t seed) {
  Tensor t(std::move(shape));
  t.fill_random(seed);
  return t;
}

// ---- GEMM -------------------------------------------------------------------

TEST(GemmTest, MatchesNaiveTripleLoop) {
  ThreadPool pool(2);
  constexpr std::size_t m = 37;
  constexpr std::size_t k = 53;
  constexpr std::size_t n = 29;
  const Tensor a = random_tensor(Shape{static_cast<std::int64_t>(m),
                                       static_cast<std::int64_t>(k)},
                                 1);
  const Tensor b = random_tensor(Shape{static_cast<std::int64_t>(k),
                                       static_cast<std::int64_t>(n)},
                                 2);
  std::vector<float> c(m * n, 0.0f);
  gemm(pool, a.data(), b.data(), c, m, k, n);

  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      float acc = 0.0f;
      for (std::size_t kk = 0; kk < k; ++kk) {
        acc += a.data()[i * k + kk] * b.data()[kk * n + j];
      }
      ASSERT_NEAR(c[i * n + j], acc, 1e-4f) << "at (" << i << ", " << j << ")";
    }
  }
}

TEST(GemmTest, AccumulatesIntoExistingC) {
  ThreadPool pool(1);
  const Tensor a = random_tensor(Shape{4, 4}, 3);
  const Tensor b = random_tensor(Shape{4, 4}, 4);
  std::vector<float> once(16, 0.0f);
  gemm(pool, a.data(), b.data(), once, 4, 4, 4);
  std::vector<float> twice(16, 0.0f);
  gemm(pool, a.data(), b.data(), twice, 4, 4, 4);
  gemm(pool, a.data(), b.data(), twice, 4, 4, 4);
  for (std::size_t i = 0; i < 16; ++i) {
    EXPECT_NEAR(twice[i], 2.0f * once[i], 1e-4f);
  }
}

TEST(GemmTest, SizeMismatchThrows) {
  ThreadPool pool(1);
  std::vector<float> a(4), b(4), c(3);
  EXPECT_THROW(gemm(pool, a, b, c, 2, 2, 2), InvalidArgument);
}

// ---- packed GEMM property suite ---------------------------------------------

/// Naive reference: C = A_op * B_op + beta * C in double precision.
std::vector<float> naive_gemm(const std::vector<float>& a, bool ta,
                              const std::vector<float>& b, bool tb,
                              const std::vector<float>& c0, std::size_t m,
                              std::size_t k, std::size_t n, float beta) {
  std::vector<float> c(m * n, 0.0f);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (std::size_t kk = 0; kk < k; ++kk) {
        const float av = ta ? a[kk * m + i] : a[i * k + kk];
        const float bv = tb ? b[j * k + kk] : b[kk * n + j];
        acc += static_cast<double>(av) * static_cast<double>(bv);
      }
      c[i * n + j] =
          static_cast<float>(acc) + beta * (beta != 0.0f ? c0[i * n + j] : 0.0f);
    }
  }
  return c;
}

std::vector<float> random_vec(std::size_t size, std::uint64_t seed) {
  Tensor t(Shape{static_cast<std::int64_t>(size)});
  t.fill_random(seed);
  return std::vector<float>(t.data().begin(), t.data().end());
}

void expect_close_rel(const std::vector<float>& got,
                      const std::vector<float>& want, float rel_tol) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    const float tol = rel_tol * (1.0f + std::fabs(want[i]));
    ASSERT_NEAR(got[i], want[i], tol) << "at flat index " << i;
  }
}

TEST(PackedGemmTest, AllTransposeAndBetaVariantsMatchReference) {
  ThreadPool pool(2);
  // Adversarial shapes: every combination of (multiple / non-multiple) of
  // the 6x16 register tile and the 72/256/512 cache blocks, plus degenerate
  // single-row/col cases.
  const struct {
    std::size_t m, k, n;
  } shapes[] = {{1, 1, 1},    {6, 16, 16},  {5, 7, 3},     {37, 53, 29},
                {72, 256, 48}, {73, 257, 49}, {13, 1, 17},  {2, 300, 530},
                {144, 512, 32}};
  for (const auto& sh : shapes) {
    const std::vector<float> a = random_vec(sh.m * sh.k, 101 + sh.m);
    const std::vector<float> b = random_vec(sh.k * sh.n, 202 + sh.n);
    for (const bool ta : {false, true}) {
      for (const bool tb : {false, true}) {
        for (const float beta : {0.0f, 1.0f}) {
          // beta == 0 must fully overwrite C: poison it with NaN to catch
          // any read-before-write or skipped element.
          std::vector<float> c =
              beta == 0.0f
                  ? std::vector<float>(
                        sh.m * sh.n, std::numeric_limits<float>::quiet_NaN())
                  : random_vec(sh.m * sh.n, 303);
          const std::vector<float> want =
              naive_gemm(a, ta, b, tb, c, sh.m, sh.k, sh.n, beta);
          GemmOpts opts;
          opts.trans_a = ta ? Trans::kYes : Trans::kNo;
          opts.trans_b = tb ? Trans::kYes : Trans::kNo;
          opts.beta = beta;
          gemm(pool, a, b, c, sh.m, sh.k, sh.n, opts);
          SCOPED_TRACE(::testing::Message()
                       << "m=" << sh.m << " k=" << sh.k << " n=" << sh.n
                       << " ta=" << ta << " tb=" << tb << " beta=" << beta);
          expect_close_rel(c, want, 1e-4f);
        }
      }
    }
  }
}

TEST(PackedGemmTest, FusedBiasAndActivationEpilogue) {
  ThreadPool pool(2);
  constexpr std::size_t m = 19, k = 33, n = 41;
  const std::vector<float> a = random_vec(m * k, 7);
  const std::vector<float> b = random_vec(k * n, 8);
  const std::vector<float> row_bias = random_vec(m, 9);
  const std::vector<float> col_bias = random_vec(n, 10);

  std::vector<float> plain(m * n, 0.0f);
  GemmOpts base;
  base.beta = 0.0f;
  gemm(pool, a, b, plain, m, k, n, base);

  std::vector<float> fused(m * n, std::numeric_limits<float>::quiet_NaN());
  GemmOpts opts;
  opts.beta = 0.0f;
  opts.row_bias = row_bias.data();
  opts.col_bias = col_bias.data();
  opts.act = ActKind::kReLU;
  gemm(pool, a, b, fused, m, k, n, opts);

  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      const float pre = plain[i * n + j] + row_bias[i] + col_bias[j];
      const float want = pre > 0.0f ? pre : 0.0f;
      ASSERT_NEAR(fused[i * n + j], want, 1e-5f)
          << "at (" << i << ", " << j << ")";
    }
  }
}

TEST(PackedGemmTest, BitIdenticalAcrossThreadCounts) {
  // The campaign engine asserts measurement determinism across --jobs; tile
  // boundaries are constants, so the summation order per element must not
  // depend on the pool size.
  constexpr std::size_t m = 130, k = 300, n = 70;
  const std::vector<float> a = random_vec(m * k, 21);
  const std::vector<float> b = random_vec(k * n, 22);
  std::vector<float> c1(m * n, 0.0f), c4(m * n, 0.0f);
  ThreadPool pool1(1);
  ThreadPool pool4(4);
  gemm(pool1, a, b, c1, m, k, n);
  gemm(pool4, a, b, c4, m, k, n);
  EXPECT_EQ(c1, c4);
}

// ---- conv2d: im2col vs direct ------------------------------------------------

struct ConvCase {
  std::string name;
  std::int64_t batch, in_ch, out_ch, image, kernel, stride, pad, groups,
      dilation;
  bool bias;
};

class ConvAgreement : public ::testing::TestWithParam<ConvCase> {};

TEST_P(ConvAgreement, Im2colMatchesDirect) {
  const ConvCase& c = GetParam();
  Conv2dAttrs a = Conv2dAttrs::square(c.in_ch, c.out_ch, c.kernel, c.stride,
                                      c.pad, c.groups, c.bias);
  a.dilation_h = a.dilation_w = c.dilation;

  const Tensor input =
      random_tensor(Shape::nchw(c.batch, c.in_ch, c.image, c.image), 10);
  const Tensor weight = random_tensor(
      Shape({c.out_ch, c.in_ch / c.groups, c.kernel, c.kernel}), 11);
  const Tensor bias = c.bias ? random_tensor(Shape{c.out_ch}, 12) : Tensor();

  const Tensor ref = conv2d_direct(input, weight, bias, a);
  ThreadPool pool(2);
  const Tensor fast = conv2d_im2col(pool, input, weight, bias, a);

  ASSERT_EQ(ref.shape(), fast.shape());
  EXPECT_LT(ref.max_abs_diff(fast), 1e-3f);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ConvAgreement,
    ::testing::Values(
        ConvCase{"plain3x3", 1, 3, 8, 8, 3, 1, 1, 1, 1, false},
        ConvCase{"stride2", 2, 4, 6, 9, 3, 2, 1, 1, 1, false},
        ConvCase{"pointwise", 1, 8, 16, 7, 1, 1, 0, 1, 1, false},
        ConvCase{"kernel5pad2", 1, 2, 4, 11, 5, 1, 2, 1, 1, true},
        ConvCase{"grouped", 1, 8, 8, 8, 3, 1, 1, 4, 1, false},
        ConvCase{"depthwise", 2, 6, 6, 10, 3, 1, 1, 6, 1, false},
        ConvCase{"dilated", 1, 3, 5, 13, 3, 1, 2, 1, 2, false},
        ConvCase{"stem7x7s2", 1, 3, 8, 32, 7, 2, 3, 1, 1, false},
        ConvCase{"nopad_shrink", 1, 4, 4, 6, 3, 1, 0, 1, 1, true},
        ConvCase{"batch4", 4, 3, 5, 8, 3, 1, 1, 1, 1, true}),
    [](const auto& info) { return info.param.name; });

TEST(ConvTest, RectangularKernel1x7) {
  Conv2dAttrs a;
  a.in_channels = 3;
  a.out_channels = 4;
  a.kernel_h = 1;
  a.kernel_w = 7;
  a.pad_w = 3;
  const Tensor input = random_tensor(Shape::nchw(1, 3, 9, 9), 20);
  const Tensor weight = random_tensor(Shape({4, 3, 1, 7}), 21);
  const Tensor ref = conv2d_direct(input, weight, Tensor(), a);
  ThreadPool pool(2);
  const Tensor fast = conv2d_im2col(pool, input, weight, Tensor(), a);
  EXPECT_EQ(ref.shape(), Shape::nchw(1, 4, 9, 9));
  EXPECT_LT(ref.max_abs_diff(fast), 1e-4f);
}

TEST(ConvTest, IdentityKernelPreservesInput) {
  // 1x1 conv with identity weights on matching channels.
  Conv2dAttrs a = Conv2dAttrs::square(2, 2, 1);
  Tensor weight(Shape({2, 2, 1, 1}));
  weight.at4(0, 0, 0, 0) = 1.0f;
  weight.at4(1, 1, 0, 0) = 1.0f;
  const Tensor input = random_tensor(Shape::nchw(1, 2, 4, 4), 22);
  const Tensor out = conv2d_direct(input, weight, Tensor(), a);
  EXPECT_LT(out.max_abs_diff(input), 1e-6f);
}

TEST(ConvTest, FusedActivationMatchesSeparatePass) {
  ThreadPool pool(2);
  const Conv2dAttrs a = Conv2dAttrs::square(4, 8, 3, 1, 1, 1, true);
  const Tensor input = random_tensor(Shape::nchw(2, 4, 9, 9), 31);
  const Tensor weight = random_tensor(Shape({8, 4, 3, 3}), 32);
  const Tensor bias = random_tensor(Shape{8}, 33);
  const Tensor separate =
      activation(pool, conv2d_im2col(pool, input, weight, bias, a),
                 ActKind::kReLU);
  const Tensor fused =
      conv2d_im2col(pool, input, weight, bias, a, ActKind::kReLU);
  ASSERT_EQ(separate.shape(), fused.shape());
  EXPECT_EQ(separate.max_abs_diff(fused), 0.0f);
}

TEST(ConvTest, BitIdenticalAcrossThreadCounts) {
  const Conv2dAttrs a = Conv2dAttrs::square(6, 12, 3, 1, 1, 2, true);
  const Tensor input = random_tensor(Shape::nchw(3, 6, 17, 17), 41);
  const Tensor weight = random_tensor(Shape({12, 3, 3, 3}), 42);
  const Tensor bias = random_tensor(Shape{12}, 43);
  ThreadPool pool1(1);
  ThreadPool pool4(4);
  const Tensor r1 = conv2d_im2col(pool1, input, weight, bias, a);
  const Tensor r4 = conv2d_im2col(pool4, input, weight, bias, a);
  EXPECT_EQ(r1.max_abs_diff(r4), 0.0f);
}

// ---- workspace arena ---------------------------------------------------------

TEST(WorkspaceTest, SteadyStateConvPerformsNoArenaGrowth) {
  ThreadPool pool(2);
  const Conv2dAttrs a = Conv2dAttrs::square(8, 16, 3, 1, 1, 1, true);
  const Tensor input = random_tensor(Shape::nchw(2, 8, 16, 16), 51);
  const Tensor weight = random_tensor(Shape({16, 8, 3, 3}), 52);
  const Tensor bias = random_tensor(Shape{16}, 53);
  // Warm-up: every participating thread sizes its arena (static scheduling
  // gives each thread the same chunk on every identical call).
  conv2d_im2col(pool, input, weight, bias, a);
  conv2d_im2col(pool, input, weight, bias, a);
  const std::uint64_t grows = Workspace::total_grows();
  const std::uint64_t bytes = Workspace::total_bytes();
  for (int i = 0; i < 5; ++i) {
    conv2d_im2col(pool, input, weight, bias, a);
  }
  EXPECT_EQ(Workspace::total_grows(), grows)
      << "steady-state conv calls must not reallocate workspace memory";
  EXPECT_EQ(Workspace::total_bytes(), bytes);
}

TEST(WorkspaceTest, SteadyStateGemmPerformsNoArenaGrowth) {
  ThreadPool pool(2);
  constexpr std::size_t m = 96, k = 128, n = 160;
  const std::vector<float> a = random_vec(m * k, 61);
  const std::vector<float> b = random_vec(k * n, 62);
  std::vector<float> c(m * n, 0.0f);
  gemm(pool, a, b, c, m, k, n);
  gemm(pool, a, b, c, m, k, n);
  const std::uint64_t grows = Workspace::total_grows();
  for (int i = 0; i < 5; ++i) gemm(pool, a, b, c, m, k, n);
  EXPECT_EQ(Workspace::total_grows(), grows);
}

TEST(WorkspaceTest, TakeBeyondReserveThrows) {
  Workspace& ws = Workspace::tls();
  ws.reserve(8);
  ws.take(8);
  EXPECT_THROW(ws.take(1), InvalidArgument);
}

// ---- pooling -----------------------------------------------------------------

TEST(PoolTest, MaxPoolHandComputed) {
  Tensor in(Shape::nchw(1, 1, 2, 2));
  in.at4(0, 0, 0, 0) = 1.0f;
  in.at4(0, 0, 0, 1) = 5.0f;
  in.at4(0, 0, 1, 0) = -2.0f;
  in.at4(0, 0, 1, 1) = 0.5f;
  ThreadPool pool(2);
  const Tensor out = max_pool2d(pool, in, Pool2dAttrs::square(2, 2));
  ASSERT_EQ(out.shape(), Shape::nchw(1, 1, 1, 1));
  EXPECT_EQ(out.at4(0, 0, 0, 0), 5.0f);
}

TEST(PoolTest, AvgPoolHandComputed) {
  Tensor in(Shape::nchw(1, 1, 2, 2));
  in.at4(0, 0, 0, 0) = 1.0f;
  in.at4(0, 0, 0, 1) = 2.0f;
  in.at4(0, 0, 1, 0) = 3.0f;
  in.at4(0, 0, 1, 1) = 6.0f;
  ThreadPool pool(2);
  const Tensor out = avg_pool2d(pool, in, Pool2dAttrs::square(2, 2));
  EXPECT_FLOAT_EQ(out.at4(0, 0, 0, 0), 3.0f);
}

TEST(PoolTest, MaxPoolIgnoresPadding) {
  // All-negative input: padded zeros must not win the max.
  Tensor in(Shape::nchw(1, 1, 3, 3), -4.0f);
  ThreadPool pool(2);
  const Tensor out = max_pool2d(pool, in, Pool2dAttrs::square(3, 1, 1));
  for (const float v : out.data()) EXPECT_EQ(v, -4.0f);
}

TEST(PoolTest, AdaptiveAvgPoolToOneIsGlobalMean) {
  Tensor in(Shape::nchw(1, 2, 4, 4));
  float v = 0.0f;
  for (float& x : in.data()) x = v++;
  ThreadPool pool(2);
  const Tensor out = adaptive_avg_pool2d(pool, in, 1, 1);
  ASSERT_EQ(out.shape(), Shape::nchw(1, 2, 1, 1));
  EXPECT_FLOAT_EQ(out.at4(0, 0, 0, 0), 7.5f);   // mean of 0..15
  EXPECT_FLOAT_EQ(out.at4(0, 1, 0, 0), 23.5f);  // mean of 16..31
}

TEST(PoolTest, AdaptiveAvgPoolIdentityWhenSizesMatch) {
  const Tensor in = random_tensor(Shape::nchw(1, 3, 5, 5), 30);
  ThreadPool pool(2);
  const Tensor out = adaptive_avg_pool2d(pool, in, 5, 5);
  EXPECT_LT(out.max_abs_diff(in), 1e-6f);
}

// ---- activations --------------------------------------------------------------

TEST(ActivationTest, ReluClampsNegatives) {
  Tensor in(Shape{4});
  in.at(0) = -1.0f;
  in.at(1) = 0.0f;
  in.at(2) = 2.0f;
  in.at(3) = -0.5f;
  ThreadPool pool(1);
  const Tensor out = activation(pool, in, ActKind::kReLU);
  EXPECT_EQ(out.at(0), 0.0f);
  EXPECT_EQ(out.at(2), 2.0f);
  EXPECT_EQ(out.at(3), 0.0f);
}

TEST(ActivationTest, Relu6Caps) {
  Tensor in(Shape{2});
  in.at(0) = 10.0f;
  in.at(1) = 3.0f;
  ThreadPool pool(1);
  const Tensor out = activation(pool, in, ActKind::kReLU6);
  EXPECT_EQ(out.at(0), 6.0f);
  EXPECT_EQ(out.at(1), 3.0f);
}

TEST(ActivationTest, SigmoidAtZeroIsHalf) {
  Tensor in(Shape{1});
  ThreadPool pool(1);
  const Tensor out = activation(pool, in, ActKind::kSigmoid);
  EXPECT_FLOAT_EQ(out.at(0), 0.5f);
}

TEST(ActivationTest, SiluMatchesDefinition) {
  Tensor in(Shape{1});
  in.at(0) = 1.5f;
  ThreadPool pool(1);
  const Tensor out = activation(pool, in, ActKind::kSiLU);
  EXPECT_NEAR(out.at(0), 1.5 / (1.0 + std::exp(-1.5)), 1e-6);
}

TEST(ActivationTest, HardSwishKnots) {
  Tensor in(Shape{3});
  in.at(0) = -3.0f;  // -> 0
  in.at(1) = 3.0f;   // -> 3
  in.at(2) = 0.0f;   // -> 0
  ThreadPool pool(1);
  const Tensor out = activation(pool, in, ActKind::kHardSwish);
  EXPECT_FLOAT_EQ(out.at(0), 0.0f);
  EXPECT_FLOAT_EQ(out.at(1), 3.0f);
  EXPECT_FLOAT_EQ(out.at(2), 0.0f);
}

TEST(ActivationTest, HardSigmoidSaturates) {
  Tensor in(Shape{3});
  in.at(0) = -10.0f;
  in.at(1) = 10.0f;
  in.at(2) = 0.0f;
  ThreadPool pool(1);
  const Tensor out = activation(pool, in, ActKind::kHardSigmoid);
  EXPECT_FLOAT_EQ(out.at(0), 0.0f);
  EXPECT_FLOAT_EQ(out.at(1), 1.0f);
  EXPECT_FLOAT_EQ(out.at(2), 0.5f);
}

// ---- batch norm ----------------------------------------------------------------

TEST(BatchNormTest, IdentityParamsPassThrough) {
  const Tensor in = random_tensor(Shape::nchw(1, 3, 4, 4), 40);
  Tensor gamma(Shape{3}, 1.0f);
  Tensor beta(Shape{3}, 0.0f);
  Tensor mean(Shape{3}, 0.0f);
  Tensor var(Shape{3}, 1.0f);
  ThreadPool pool(2);
  const Tensor out = batch_norm2d(pool, in, gamma, beta, mean, var, 0.0);
  EXPECT_LT(out.max_abs_diff(in), 1e-6f);
}

TEST(BatchNormTest, NormalizesWithRunningStats) {
  Tensor in(Shape::nchw(1, 1, 1, 2));
  in.at4(0, 0, 0, 0) = 3.0f;
  in.at4(0, 0, 0, 1) = 7.0f;
  Tensor gamma(Shape{1}, 2.0f);
  Tensor beta(Shape{1}, 1.0f);
  Tensor mean(Shape{1}, 5.0f);
  Tensor var(Shape{1}, 4.0f);
  ThreadPool pool(2);
  const Tensor out = batch_norm2d(pool, in, gamma, beta, mean, var, 0.0);
  // (3-5)/2 * 2 + 1 = -1; (7-5)/2 * 2 + 1 = 3.
  EXPECT_NEAR(out.at4(0, 0, 0, 0), -1.0f, 1e-5);
  EXPECT_NEAR(out.at4(0, 0, 0, 1), 3.0f, 1e-5);
}

// ---- linear / elementwise / concat ---------------------------------------------

TEST(LinearTest, HandComputed) {
  ThreadPool pool(1);
  Tensor in(Shape{1, 2});
  in.at(0) = 1.0f;
  in.at(1) = 2.0f;
  Tensor w(Shape{2, 2});
  w.at(0) = 1.0f;  // w(0,0)
  w.at(1) = 1.0f;  // w(0,1)
  w.at(2) = 3.0f;  // w(1,0)
  w.at(3) = -1.0f; // w(1,1)
  Tensor b(Shape{2});
  b.at(0) = 0.5f;
  b.at(1) = 0.0f;
  const Tensor out = linear(pool, in, w, b, LinearAttrs{2, 2, true});
  EXPECT_FLOAT_EQ(out.at(0), 3.5f);  // 1+2 + 0.5
  EXPECT_FLOAT_EQ(out.at(1), 1.0f);  // 3-2
}

TEST(AddTest, Elementwise) {
  Tensor a(Shape{3}, 1.0f);
  Tensor b(Shape{3}, 2.5f);
  const Tensor out = add(a, b);
  for (const float v : out.data()) EXPECT_FLOAT_EQ(v, 3.5f);
  EXPECT_THROW(add(a, Tensor(Shape{4})), InvalidArgument);
}

TEST(MultiplyTest, BroadcastGate) {
  Tensor x(Shape::nchw(1, 2, 2, 2), 3.0f);
  Tensor gate(Shape::nchw(1, 2, 1, 1));
  gate.at4(0, 0, 0, 0) = 0.5f;
  gate.at4(0, 1, 0, 0) = 2.0f;
  const Tensor out = multiply(x, gate);
  EXPECT_FLOAT_EQ(out.at4(0, 0, 1, 1), 1.5f);
  EXPECT_FLOAT_EQ(out.at4(0, 1, 0, 1), 6.0f);
}

TEST(MultiplyTest, RejectsNonBroadcastableShapes) {
  Tensor a(Shape::nchw(1, 2, 2, 2));
  Tensor b(Shape::nchw(1, 3, 1, 1));
  EXPECT_THROW(multiply(a, b), InvalidArgument);
}

TEST(ConcatTest, StacksChannelsInOrder) {
  Tensor a(Shape::nchw(1, 1, 2, 2), 1.0f);
  Tensor b(Shape::nchw(1, 2, 2, 2), 2.0f);
  const Tensor out = concat({a, b});
  ASSERT_EQ(out.shape(), Shape::nchw(1, 3, 2, 2));
  EXPECT_FLOAT_EQ(out.at4(0, 0, 0, 0), 1.0f);
  EXPECT_FLOAT_EQ(out.at4(0, 1, 0, 0), 2.0f);
  EXPECT_FLOAT_EQ(out.at4(0, 2, 1, 1), 2.0f);
}

TEST(FlattenTest, PreservesDataOrder) {
  Tensor in(Shape::nchw(2, 2, 1, 2));
  float v = 0.0f;
  for (float& x : in.data()) x = v++;
  const Tensor out = flatten(in);
  ASSERT_EQ(out.shape(), Shape({2, 4}));
  for (std::size_t i = 0; i < 8; ++i) EXPECT_FLOAT_EQ(out.at(i), static_cast<float>(i));
}

}  // namespace
}  // namespace convmeter

namespace convmeter {
namespace {

TEST(SliceChannelsTest, KeepsRequestedRange) {
  Tensor in(Shape::nchw(1, 4, 2, 2));
  float v = 0.0f;
  for (float& x : in.data()) x = v++;
  const Tensor out = slice_channels(in, 1, 3);
  ASSERT_EQ(out.shape(), Shape::nchw(1, 2, 2, 2));
  EXPECT_FLOAT_EQ(out.at4(0, 0, 0, 0), in.at4(0, 1, 0, 0));
  EXPECT_FLOAT_EQ(out.at4(0, 1, 1, 1), in.at4(0, 2, 1, 1));
}

TEST(SliceChannelsTest, RangeChecked) {
  Tensor in(Shape::nchw(1, 4, 2, 2));
  EXPECT_THROW(slice_channels(in, 2, 5), InvalidArgument);
  EXPECT_THROW(slice_channels(in, 3, 3), InvalidArgument);
}

TEST(ChannelShuffleTest, PermutesAcrossGroups) {
  // 6 channels, 2 groups: [0 1 2 | 3 4 5] -> [0 3 1 4 2 5].
  Tensor in(Shape::nchw(1, 6, 1, 1));
  for (std::int64_t c = 0; c < 6; ++c) in.at4(0, c, 0, 0) = static_cast<float>(c);
  const Tensor out = channel_shuffle(in, 2);
  const float want[6] = {0, 3, 1, 4, 2, 5};
  for (std::int64_t c = 0; c < 6; ++c) {
    EXPECT_FLOAT_EQ(out.at4(0, c, 0, 0), want[c]);
  }
}

TEST(ChannelShuffleTest, InverseIsShuffleWithComplementGroups) {
  Tensor in(Shape::nchw(2, 12, 3, 3));
  in.fill_random(55);
  const Tensor shuffled = channel_shuffle(in, 3);
  const Tensor back = channel_shuffle(shuffled, 12 / 3);
  EXPECT_EQ(back.max_abs_diff(in), 0.0f);
}

TEST(ChannelShuffleTest, GroupsMustDivide) {
  Tensor in(Shape::nchw(1, 6, 1, 1));
  EXPECT_THROW(channel_shuffle(in, 4), InvalidArgument);
}

// ---- transformer kernels ----------------------------------------------------

TEST(ToTokensTest, GathersChannelVectorsPerPosition) {
  ThreadPool pool(2);
  const Tensor in = random_tensor(Shape::nchw(2, 3, 2, 2), 61);
  Tensor cls(Shape{3});
  cls.fill_random(62);
  for (const bool with_cls : {false, true}) {
    const Tensor out =
        to_tokens(pool, in, with_cls ? cls : Tensor(), ToTokensAttrs{with_cls});
    const std::int64_t t0 = with_cls ? 1 : 0;
    ASSERT_EQ(out.shape(), (Shape{2, 4 + t0, 3}));
    for (std::int64_t b = 0; b < 2; ++b) {
      for (std::int64_t c = 0; c < 3; ++c) {
        if (with_cls) {
          EXPECT_EQ(out.data()[(b * (4 + t0)) * 3 + c], cls.data()[c]);
        }
        for (std::int64_t h = 0; h < 2; ++h) {
          for (std::int64_t w = 0; w < 2; ++w) {
            const std::int64_t t = t0 + h * 2 + w;
            EXPECT_EQ(out.data()[(b * (4 + t0) + t) * 3 + c],
                      in.at4(b, c, h, w))
                << "b=" << b << " c=" << c << " h=" << h << " w=" << w;
          }
        }
      }
    }
  }
}

/// Double-precision layer-norm reference.
std::vector<float> naive_layer_norm(const std::vector<float>& x,
                                    const std::vector<float>& gamma,
                                    const std::vector<float>& beta,
                                    std::size_t rows, std::size_t dim,
                                    double eps) {
  std::vector<float> y(rows * dim);
  for (std::size_t r = 0; r < rows; ++r) {
    double mean = 0.0;
    for (std::size_t i = 0; i < dim; ++i) mean += x[r * dim + i];
    mean /= static_cast<double>(dim);
    double var = 0.0;
    for (std::size_t i = 0; i < dim; ++i) {
      const double d = x[r * dim + i] - mean;
      var += d * d;
    }
    var /= static_cast<double>(dim);
    const double inv = 1.0 / std::sqrt(var + eps);
    for (std::size_t i = 0; i < dim; ++i) {
      y[r * dim + i] = static_cast<float>((x[r * dim + i] - mean) * inv *
                                              gamma[i] +
                                          beta[i]);
    }
  }
  return y;
}

TEST(LayerNormTest, MatchesDoubleReferenceAcrossShapes) {
  ThreadPool pool(3);
  const struct {
    std::int64_t batch, tokens, dim;
  } shapes[] = {{1, 1, 1}, {2, 5, 8}, {1, 197, 64}, {3, 7, 33}};
  for (const auto& sh : shapes) {
    SCOPED_TRACE(::testing::Message() << "B=" << sh.batch << " T=" << sh.tokens
                                      << " D=" << sh.dim);
    const Tensor in =
        random_tensor(Shape{sh.batch, sh.tokens, sh.dim},
                      static_cast<std::uint64_t>(71 + sh.dim));
    const Tensor gamma = random_tensor(Shape{sh.dim}, 72);
    const Tensor beta = random_tensor(Shape{sh.dim}, 73);
    const Tensor out = layer_norm(pool, in, gamma, beta,
                                  LayerNormAttrs{sh.dim});
    const auto rows = static_cast<std::size_t>(sh.batch * sh.tokens);
    const std::vector<float> want = naive_layer_norm(
        {in.data().begin(), in.data().end()},
        {gamma.data().begin(), gamma.data().end()},
        {beta.data().begin(), beta.data().end()}, rows,
        static_cast<std::size_t>(sh.dim), 1e-5);
    expect_close_rel({out.data().begin(), out.data().end()}, want, 1e-4f);
  }
}

TEST(LayerNormTest, BitIdenticalAcrossThreadCounts) {
  const Tensor in = random_tensor(Shape{4, 50, 32}, 81);
  const Tensor gamma = random_tensor(Shape{32}, 82);
  const Tensor beta = random_tensor(Shape{32}, 83);
  ThreadPool pool1(1);
  ThreadPool pool4(4);
  const Tensor a = layer_norm(pool1, in, gamma, beta, LayerNormAttrs{32});
  const Tensor b = layer_norm(pool4, in, gamma, beta, LayerNormAttrs{32});
  EXPECT_EQ(a.max_abs_diff(b), 0.0f);
}

/// Double-precision multi-head self-attention reference (fused PyTorch
/// MultiheadAttention parameter layout, matching the production kernel).
std::vector<float> naive_self_attention(
    const std::vector<float>& x, const std::vector<float>& wi,
    const std::vector<float>& bi, const std::vector<float>& wo,
    const std::vector<float>& bo, std::size_t B, std::size_t T, std::size_t D,
    std::size_t H) {
  const std::size_t Dh = D / H;
  const double scale = 1.0 / std::sqrt(static_cast<double>(Dh));
  std::vector<double> qkv(B * T * 3 * D);
  for (std::size_t b = 0; b < B; ++b) {
    for (std::size_t t = 0; t < T; ++t) {
      for (std::size_t o = 0; o < 3 * D; ++o) {
        double acc = bi[o];
        for (std::size_t d = 0; d < D; ++d) {
          acc += static_cast<double>(x[(b * T + t) * D + d]) * wi[o * D + d];
        }
        qkv[(b * T + t) * 3 * D + o] = acc;
      }
    }
  }
  std::vector<double> ctx(B * T * D);
  for (std::size_t b = 0; b < B; ++b) {
    for (std::size_t h = 0; h < H; ++h) {
      for (std::size_t t = 0; t < T; ++t) {
        const double* q = &qkv[(b * T + t) * 3 * D + h * Dh];
        std::vector<double> p(T);
        double row_max = -1e300;
        for (std::size_t u = 0; u < T; ++u) {
          const double* k = &qkv[(b * T + u) * 3 * D + D + h * Dh];
          double s = 0.0;
          for (std::size_t d = 0; d < Dh; ++d) s += q[d] * k[d];
          p[u] = s * scale;
          row_max = std::max(row_max, p[u]);
        }
        double denom = 0.0;
        for (std::size_t u = 0; u < T; ++u) {
          p[u] = std::exp(p[u] - row_max);
          denom += p[u];
        }
        for (std::size_t d = 0; d < Dh; ++d) {
          double acc = 0.0;
          for (std::size_t u = 0; u < T; ++u) {
            acc += p[u] / denom *
                   qkv[(b * T + u) * 3 * D + 2 * D + h * Dh + d];
          }
          ctx[(b * T + t) * D + h * Dh + d] = acc;
        }
      }
    }
  }
  std::vector<float> y(B * T * D);
  for (std::size_t r = 0; r < B * T; ++r) {
    for (std::size_t o = 0; o < D; ++o) {
      double acc = bo[o];
      for (std::size_t d = 0; d < D; ++d) acc += ctx[r * D + d] * wo[o * D + d];
      y[r * D + o] = static_cast<float>(acc);
    }
  }
  return y;
}

TEST(SelfAttentionTest, MatchesDoubleReferenceAcrossShapes) {
  ThreadPool pool(3);
  const struct {
    std::int64_t batch, tokens, dim, heads;
  } shapes[] = {{1, 1, 2, 1}, {1, 4, 8, 2}, {2, 7, 12, 3}, {2, 17, 16, 4}};
  for (const auto& sh : shapes) {
    SCOPED_TRACE(::testing::Message() << "B=" << sh.batch << " T=" << sh.tokens
                                      << " D=" << sh.dim
                                      << " H=" << sh.heads);
    const Tensor in =
        random_tensor(Shape{sh.batch, sh.tokens, sh.dim},
                      static_cast<std::uint64_t>(90 + sh.tokens));
    const Tensor wi = random_tensor(Shape{3 * sh.dim, sh.dim}, 91);
    const Tensor bi = random_tensor(Shape{3 * sh.dim}, 92);
    const Tensor wo = random_tensor(Shape{sh.dim, sh.dim}, 93);
    const Tensor bo = random_tensor(Shape{sh.dim}, 94);
    const SelfAttentionAttrs attrs{sh.dim, sh.heads};
    const Tensor out = self_attention(pool, in, wi, bi, wo, bo, attrs);
    const std::vector<float> want = naive_self_attention(
        {in.data().begin(), in.data().end()},
        {wi.data().begin(), wi.data().end()},
        {bi.data().begin(), bi.data().end()},
        {wo.data().begin(), wo.data().end()},
        {bo.data().begin(), bo.data().end()},
        static_cast<std::size_t>(sh.batch),
        static_cast<std::size_t>(sh.tokens), static_cast<std::size_t>(sh.dim),
        static_cast<std::size_t>(sh.heads));
    expect_close_rel({out.data().begin(), out.data().end()}, want, 1e-4f);
  }
}

TEST(SelfAttentionTest, BitIdenticalAcrossThreadCounts) {
  // The (batch x head) partition uses grain 1 with fixed per-task serial
  // math, so any worker count must produce the same bits — the campaign
  // engine's determinism contract for --jobs.
  const Tensor in = random_tensor(Shape{3, 19, 24}, 95);
  const Tensor wi = random_tensor(Shape{72, 24}, 96);
  const Tensor bi = random_tensor(Shape{72}, 97);
  const Tensor wo = random_tensor(Shape{24, 24}, 98);
  const Tensor bo = random_tensor(Shape{24}, 99);
  const SelfAttentionAttrs attrs{24, 4};
  ThreadPool pool1(1);
  ThreadPool pool4(4);
  const Tensor a = self_attention(pool1, in, wi, bi, wo, bo, attrs);
  const Tensor b = self_attention(pool4, in, wi, bi, wo, bo, attrs);
  EXPECT_EQ(a.max_abs_diff(b), 0.0f);
}

TEST(SelectTokenTest, ExtractsRequestedRow) {
  const Tensor in = random_tensor(Shape{2, 5, 3}, 100);
  const Tensor out = select_token(in, 2);
  ASSERT_EQ(out.shape(), (Shape{2, 3}));
  for (std::int64_t b = 0; b < 2; ++b) {
    for (std::int64_t d = 0; d < 3; ++d) {
      EXPECT_EQ(out.data()[b * 3 + d], in.data()[(b * 5 + 2) * 3 + d]);
    }
  }
  EXPECT_THROW(select_token(in, 5), InvalidArgument);
}

TEST(TransposeTokensTest, SwapsLastTwoDimsAndIsInvolution) {
  ThreadPool pool(2);
  const Tensor in = random_tensor(Shape{2, 4, 6}, 101);
  const Tensor t = transpose_tokens(pool, in);
  ASSERT_EQ(t.shape(), (Shape{2, 6, 4}));
  for (std::int64_t b = 0; b < 2; ++b) {
    for (std::int64_t i = 0; i < 4; ++i) {
      for (std::int64_t j = 0; j < 6; ++j) {
        EXPECT_EQ(t.data()[(b * 6 + j) * 4 + i], in.data()[(b * 4 + i) * 6 + j]);
      }
    }
  }
  const Tensor back = transpose_tokens(pool, t);
  EXPECT_EQ(back.max_abs_diff(in), 0.0f);
}

}  // namespace
}  // namespace convmeter
