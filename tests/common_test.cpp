// Unit tests for src/common: RNG, strings, CSV, table printer, units.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "common/clock.hpp"
#include "common/csv.hpp"
#include "common/error.hpp"
#include "common/json.hpp"
#include "common/rng.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "common/units.hpp"

namespace convmeter {
namespace {

// ---- Rng -------------------------------------------------------------------

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformRangeRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(RngTest, UniformIntCoversRangeInclusively) {
  Rng rng(11);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.uniform_int(0, 7);
    ASSERT_GE(v, 0);
    ASSERT_LE(v, 7);
    saw_lo |= v == 0;
    saw_hi |= v == 7;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, UniformIntSingleValue) {
  Rng rng(3);
  EXPECT_EQ(rng.uniform_int(5, 5), 5);
}

TEST(RngTest, NormalMomentsAreRight) {
  Rng rng(13);
  double sum = 0.0;
  double sq = 0.0;
  constexpr int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(RngTest, LognormalFactorHasMedianOne) {
  Rng rng(17);
  int above = 0;
  constexpr int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (rng.lognormal_factor(0.3) > 1.0) ++above;
  }
  EXPECT_NEAR(static_cast<double>(above) / n, 0.5, 0.02);
}

TEST(RngTest, LognormalZeroSigmaIsExactlyOne) {
  Rng rng(19);
  EXPECT_DOUBLE_EQ(rng.lognormal_factor(0.0), 1.0);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(23);
  Rng child = a.fork();
  EXPECT_NE(a.next_u64(), child.next_u64());
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(29);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  auto copy = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, copy);
}

TEST(RngTest, InvalidArgumentsThrow) {
  Rng rng(1);
  EXPECT_THROW(rng.uniform(2.0, 1.0), InvalidArgument);
  EXPECT_THROW(rng.uniform_int(3, 2), InvalidArgument);
  EXPECT_THROW(rng.normal(0.0, -1.0), InvalidArgument);
  EXPECT_THROW(rng.lognormal_factor(-0.1), InvalidArgument);
}

// ---- strings ----------------------------------------------------------------

TEST(StringsTest, SplitBasic) {
  const auto parts = split("a,b,c", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "c");
}

TEST(StringsTest, SplitKeepsEmptyFields) {
  const auto parts = split("a,,c,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[3], "");
}

TEST(StringsTest, TrimRemovesWhitespace) {
  EXPECT_EQ(trim("  hi \t\n"), "hi");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
}

TEST(StringsTest, ToLower) { EXPECT_EQ(to_lower("AbC-9"), "abc-9"); }

TEST(StringsTest, StartsWith) {
  EXPECT_TRUE(starts_with("layer1.0.conv", "layer1.0"));
  EXPECT_FALSE(starts_with("layer1", "layer1.0"));
}

TEST(StringsTest, Join) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
}

TEST(StringsTest, ParseDouble) {
  EXPECT_DOUBLE_EQ(parse_double("3.5"), 3.5);
  EXPECT_DOUBLE_EQ(parse_double(" -1e-3 "), -1e-3);
  EXPECT_THROW(parse_double("abc"), ParseError);
  EXPECT_THROW(parse_double("1.5x"), ParseError);
  EXPECT_THROW(parse_double(""), ParseError);
}

TEST(StringsTest, ParseInt) {
  EXPECT_EQ(parse_int("42"), 42);
  EXPECT_EQ(parse_int("-7"), -7);
  EXPECT_THROW(parse_int("4.2"), ParseError);
  EXPECT_THROW(parse_int(""), ParseError);
}

// ---- CSV ---------------------------------------------------------------------

TEST(CsvTest, RoundTrip) {
  CsvTable t({"name", "value"});
  t.add_row({"x", "1.5"});
  t.add_row({"y", "2"});
  std::ostringstream os;
  t.write(os);
  std::istringstream is(os.str());
  const CsvTable back = CsvTable::read(is);
  EXPECT_EQ(back.num_rows(), 2u);
  EXPECT_EQ(back.cell(0, "name"), "x");
  EXPECT_DOUBLE_EQ(back.cell_double(0, "value"), 1.5);
  EXPECT_EQ(back.cell_int(1, "value"), 2);
}

TEST(CsvTest, RowWidthMismatchThrows) {
  CsvTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), InvalidArgument);
}

TEST(CsvTest, UnknownColumnThrows) {
  CsvTable t({"a"});
  t.add_row({"1"});
  EXPECT_THROW(t.cell(0, "missing"), ParseError);
}

TEST(CsvTest, EmptyStreamThrows) {
  std::istringstream is("");
  EXPECT_THROW(CsvTable::read(is), ParseError);
}

TEST(CsvTest, SkipsBlankLines) {
  std::istringstream is("h\n1\n\n2\n");
  const CsvTable t = CsvTable::read(is);
  EXPECT_EQ(t.num_rows(), 2u);
}

// ---- table -------------------------------------------------------------------

TEST(ConsoleTableTest, AlignsColumns) {
  ConsoleTable t({"Model", "MAPE"});
  t.add_row({"resnet50", "0.14"});
  t.add_row({"x", "12.00"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("Model"), std::string::npos);
  EXPECT_NE(out.find("resnet50"), std::string::npos);
  EXPECT_NE(out.find("-----"), std::string::npos);
}

TEST(ConsoleTableTest, FmtPrecision) {
  EXPECT_EQ(ConsoleTable::fmt(1.23456, 2), "1.23");
  EXPECT_EQ(ConsoleTable::fmt(2.0, 0), "2");
}

TEST(ConsoleTableTest, WrongRowWidthThrows) {
  ConsoleTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"1"}), InvalidArgument);
}

// ---- units -------------------------------------------------------------------

TEST(UnitsTest, FormatSeconds) {
  EXPECT_EQ(format_seconds(1.5), "1.50 s");
  EXPECT_EQ(format_seconds(0.0123), "12.3 ms");
  EXPECT_EQ(format_seconds(42e-6), "42.0 us");
  EXPECT_EQ(format_seconds(3e-9), "3.00 ns");
}

TEST(UnitsTest, FormatBytes) {
  EXPECT_EQ(format_bytes(512), "512 B");
  EXPECT_EQ(format_bytes(2048), "2.00 KiB");
  EXPECT_EQ(format_bytes(3.5 * 1024 * 1024), "3.50 MiB");
}

TEST(UnitsTest, FormatFlops) {
  EXPECT_EQ(format_flops(4.09e9), "4.09 GFLOPs");
  EXPECT_EQ(format_flops(500), "500 FLOPs");
}

TEST(UnitsTest, FormatCount) { EXPECT_EQ(format_count(25.6e6), "25.6 M"); }

// ---- error -------------------------------------------------------------------

TEST(ErrorTest, CheckMacroThrowsWithContext) {
  try {
    CM_CHECK(false, "context message");
    FAIL() << "expected InvalidArgument";
  } catch (const InvalidArgument& e) {
    EXPECT_NE(std::string(e.what()).find("context message"),
              std::string::npos);
    EXPECT_NE(std::string(e.what()).find("common_test.cpp"),
              std::string::npos);
  }
}

TEST(ErrorTest, HierarchyIsCatchableAsError) {
  EXPECT_THROW(throw ParseError("x"), Error);
  EXPECT_THROW(throw NumericalError("x"), Error);
  EXPECT_THROW(throw InvalidArgument("x"), Error);
}

// ---- clock -------------------------------------------------------------------

TEST(ClockTest, ElapsedIsNonNegativeAndConsistent) {
  const TimePoint t0 = Clock::now();
  const TimePoint t1 = Clock::now();
  EXPECT_GE(elapsed_seconds(t0, t1), 0.0);
  EXPECT_GE(elapsed_ns(t0, t1), 0);
  EXPECT_NEAR(elapsed_seconds(t0, t1),
              static_cast<double>(elapsed_ns(t0, t1)) / 1e9, 1e-12);
}

// ---- json --------------------------------------------------------------------

TEST(JsonTest, ParsesScalars) {
  EXPECT_TRUE(json::parse("null").is_null());
  EXPECT_TRUE(json::parse("true").as_bool());
  EXPECT_FALSE(json::parse("false").as_bool());
  EXPECT_DOUBLE_EQ(json::parse("-12.5e2").as_number(), -1250.0);
  EXPECT_EQ(json::parse("\"a\\nb\\u0041\"").as_string(), "a\nbA");
}

TEST(JsonTest, ParsesNestedStructures) {
  const json::Value v = json::parse(
      R"({"name":"conv2d","ts":1.5,"args":{"depth":2},"list":[1,2,3],"ok":true})");
  EXPECT_EQ(v.at("name").as_string(), "conv2d");
  EXPECT_DOUBLE_EQ(v.at("ts").as_number(), 1.5);
  EXPECT_DOUBLE_EQ(v.at("args").at("depth").as_number(), 2.0);
  ASSERT_EQ(v.at("list").as_array().size(), 3u);
  EXPECT_DOUBLE_EQ(v.at("list").as_array()[2].as_number(), 3.0);
  EXPECT_TRUE(v.at("ok").as_bool());
  EXPECT_FALSE(v.has("missing"));
}

TEST(JsonTest, EmptyContainers) {
  EXPECT_TRUE(json::parse("{}").as_object().empty());
  EXPECT_TRUE(json::parse("  [ ]  ").as_array().empty());
}

TEST(JsonTest, MalformedInputThrows) {
  EXPECT_THROW(json::parse(""), ParseError);
  EXPECT_THROW(json::parse("{"), ParseError);
  EXPECT_THROW(json::parse("[1,]"), ParseError);
  EXPECT_THROW(json::parse("{\"a\":1} trailing"), ParseError);
  EXPECT_THROW(json::parse("\"unterminated"), ParseError);
  EXPECT_THROW(json::parse("nul"), ParseError);
}

TEST(JsonTest, TypeMismatchThrows) {
  EXPECT_THROW(json::parse("3").as_string(), InvalidArgument);
  EXPECT_THROW(json::parse("[]").at("k"), InvalidArgument);
  EXPECT_THROW(json::parse("{}").at("k"), InvalidArgument);
}

}  // namespace
}  // namespace convmeter
