// ConvMeter model tests: feature builders, fitting on planted linear data,
// prediction APIs, epoch math, and coefficient serialization.
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/json.hpp"
#include "common/rng.hpp"
#include "core/convmeter.hpp"
#include "core/features.hpp"

namespace convmeter {
namespace {

/// Synthetic sample with planted phase times following the paper's exact
/// functional forms, so fits recover them perfectly.
RuntimeSample planted_sample(double flops1, double inputs1, double outputs1,
                             double weights, double layers, double batch,
                             int devices, int nodes) {
  RuntimeSample s;
  s.model = "planted";
  s.device = "synthetic";
  s.image_size = 64;
  s.global_batch = static_cast<std::int64_t>(batch * devices);
  s.num_devices = devices;
  s.num_nodes = nodes;
  s.flops1 = flops1;
  s.inputs1 = inputs1;
  s.outputs1 = outputs1;
  s.weights = weights;
  s.layers = layers;
  const double b = batch;
  s.t_fwd = b * (1e-12 * flops1 + 2e-9 * inputs1 + 3e-9 * outputs1) + 1e-4;
  s.t_bwd = 2.0 * s.t_fwd;
  s.t_grad = 1e-5 * layers + (devices > 1 ? 1e-10 * weights + 5e-5 * devices : 0.0);
  s.t_infer = s.t_fwd;
  s.t_step = s.t_fwd + s.t_bwd + s.t_grad;
  return s;
}

std::vector<RuntimeSample> planted_set(bool multi_device) {
  std::vector<RuntimeSample> samples;
  int model_id = 0;
  for (const double f : {1e9, 4e9, 16e9}) {
    for (const double batch : {1.0, 8.0, 64.0}) {
      // The multi-device set keeps every sample at N > 1 so the planted
      // law stays exactly inside the 7-coefficient linear model class.
      for (const int devices : multi_device ? std::vector<int>{4, 8, 16}
                                            : std::vector<int>{1}) {
        RuntimeSample s = planted_sample(f, f / 500.0, f / 400.0, f / 100.0,
                                         50.0 + f / 1e9, batch, devices,
                                         devices > 4 ? devices / 4 : 1);
        s.model = "m" + std::to_string(model_id % 4);
        samples.push_back(s);
        ++model_id;
      }
    }
  }
  return samples;
}

// ---- feature builders ------------------------------------------------------------

TEST(FeaturesTest, ForwardFeaturesFactorOutMiniBatch) {
  RuntimeSample s = planted_sample(1e9, 2e6, 3e6, 1e7, 100, 16, 4, 1);
  const Vector f = forward_features(s, FeatureSet::kCombined);
  ASSERT_EQ(f.size(), 4u);
  EXPECT_DOUBLE_EQ(f[0], 16.0 * 1e9);  // b = 64/4 = 16
  EXPECT_DOUBLE_EQ(f[1], 16.0 * 2e6);
  EXPECT_DOUBLE_EQ(f[2], 16.0 * 3e6);
  EXPECT_DOUBLE_EQ(f[3], 1.0);
}

TEST(FeaturesTest, SingleMetricFeatureSets) {
  RuntimeSample s = planted_sample(1e9, 2e6, 3e6, 1e7, 100, 8, 1, 1);
  EXPECT_EQ(forward_features(s, FeatureSet::kFlopsOnly).size(), 2u);
  EXPECT_DOUBLE_EQ(forward_features(s, FeatureSet::kFlopsOnly)[0], 8e9);
  EXPECT_DOUBLE_EQ(forward_features(s, FeatureSet::kInputsOnly)[0], 1.6e7);
  EXPECT_DOUBLE_EQ(forward_features(s, FeatureSet::kOutputsOnly)[0], 2.4e7);
}

TEST(FeaturesTest, GradFeaturesSingleVsMulti) {
  RuntimeSample s = planted_sample(1e9, 2e6, 3e6, 1e7, 100, 8, 8, 2);
  EXPECT_EQ(grad_features(s, false), Vector{100.0});
  const Vector multi = grad_features(s, true);
  ASSERT_EQ(multi.size(), 3u);
  EXPECT_DOUBLE_EQ(multi[1], 1e7);
  EXPECT_DOUBLE_EQ(multi[2], 8.0);
}

TEST(FeaturesTest, BwdGradFeaturesHaveSevenCoefficients) {
  RuntimeSample s = planted_sample(1e9, 2e6, 3e6, 1e7, 100, 8, 8, 2);
  EXPECT_EQ(bwd_grad_features(s).size(), 7u);
}

TEST(FeaturesTest, TargetValueSelectsPhase) {
  RuntimeSample s = planted_sample(1e9, 2e6, 3e6, 1e7, 100, 8, 1, 1);
  EXPECT_DOUBLE_EQ(target_value(s, Phase::kForward), s.t_fwd);
  EXPECT_DOUBLE_EQ(target_value(s, Phase::kBwdGrad), s.t_bwd + s.t_grad);
  EXPECT_DOUBLE_EQ(target_value(s, Phase::kTrainStep), s.t_step);
}

TEST(FeaturesTest, DesignMatrixDimensions) {
  const auto samples = planted_set(true);
  const Design d = build_design(samples, Phase::kTrainStep,
                                FeatureSet::kCombined);
  EXPECT_EQ(d.x.rows(), samples.size());
  EXPECT_EQ(d.x.cols(), 7u);
  EXPECT_EQ(d.groups.size(), samples.size());
}

TEST(FeaturesTest, NamesAreStable) {
  EXPECT_EQ(feature_set_name(FeatureSet::kCombined), "combined");
  EXPECT_EQ(phase_name(Phase::kBwdGrad), "bwd_grad");
}

// ---- ConvMeter fitting --------------------------------------------------------------

TEST(ConvMeterTest, RecoversPlantedInferenceModel) {
  const ConvMeter m = ConvMeter::fit_inference(planted_set(false));
  QueryPoint q;
  q.metrics_b1.flops = 8e9;
  q.metrics_b1.conv_inputs = 8e9 / 500.0;
  q.metrics_b1.conv_outputs = 8e9 / 400.0;
  q.per_device_batch = 32.0;
  const double expected =
      32.0 * (1e-12 * 8e9 + 2e-9 * q.metrics_b1.conv_inputs +
              3e-9 * q.metrics_b1.conv_outputs) +
      1e-4;
  EXPECT_NEAR(m.predict_inference(q), expected, 1e-9 + 1e-6 * expected);
}

TEST(ConvMeterTest, RecoversPlantedTrainingModel) {
  const ConvMeter m = ConvMeter::fit_training(planted_set(true));
  EXPECT_TRUE(m.has_training_model());
  EXPECT_TRUE(m.multi_node());

  QueryPoint q;
  q.metrics_b1.flops = 4e9;
  q.metrics_b1.conv_inputs = 4e9 / 500.0;
  q.metrics_b1.conv_outputs = 4e9 / 400.0;
  q.metrics_b1.weights = 4e9 / 100.0;
  q.metrics_b1.layers = 54.0;
  q.per_device_batch = 16.0;
  q.num_devices = 16;
  q.num_nodes = 4;

  const RuntimeSample truth = [&] {
    RuntimeSample s = planted_sample(4e9, 4e9 / 500.0, 4e9 / 400.0,
                                     4e9 / 100.0, 54.0, 16.0, 16, 4);
    return s;
  }();
  const TrainPrediction p = m.predict_train_step(q);
  EXPECT_NEAR(p.fwd, truth.t_fwd, 1e-6 * truth.t_fwd + 1e-9);
  EXPECT_NEAR(p.step, truth.t_step, 1e-4 * truth.t_step + 1e-8);
}

TEST(ConvMeterTest, SingleNodeFitUsesLayerOnlyGradModel) {
  const ConvMeter m = ConvMeter::fit_training(planted_set(false));
  EXPECT_FALSE(m.multi_node());
  QueryPoint q;
  q.metrics_b1.flops = 1e9;
  q.metrics_b1.conv_inputs = 2e6;
  q.metrics_b1.conv_outputs = 2.5e6;
  q.metrics_b1.weights = 1e7;
  q.metrics_b1.layers = 51.0;
  q.per_device_batch = 8.0;
  const TrainPrediction p = m.predict_train_step(q);
  EXPECT_NEAR(p.grad, 1e-5 * 51.0, 1e-7);
}

TEST(ConvMeterTest, EpochTimeMatchesStepMath) {
  const ConvMeter m = ConvMeter::fit_training(planted_set(true));
  QueryPoint q;
  q.metrics_b1.flops = 4e9;
  q.metrics_b1.conv_inputs = 8e6;
  q.metrics_b1.conv_outputs = 1e7;
  q.metrics_b1.weights = 4e7;
  q.metrics_b1.layers = 54.0;
  q.per_device_batch = 32.0;
  q.num_devices = 8;
  q.num_nodes = 2;
  const double step = m.predict_train_step(q).step;
  // D / (b*N) steps per epoch (Sec. 2).
  EXPECT_NEAR(m.predict_epoch_seconds(q, 1.28e6),
              1.28e6 / (32.0 * 8.0) * step, 1e-9);
  EXPECT_NEAR(m.predict_throughput(q), 32.0 * 8.0 / step, 1e-9);
}

TEST(ConvMeterTest, InferenceOnlyModelRejectsTrainingQueries) {
  const ConvMeter m = ConvMeter::fit_inference(planted_set(false));
  QueryPoint q;
  q.metrics_b1.flops = 1e9;
  q.per_device_batch = 1.0;
  EXPECT_THROW(m.predict_train_step(q), InvalidArgument);
  EXPECT_FALSE(m.has_training_model());
}

TEST(ConvMeterTest, QueryValidation) {
  const ConvMeter m = ConvMeter::fit_inference(planted_set(false));
  QueryPoint q;
  q.per_device_batch = 0.0;
  EXPECT_THROW(m.predict_inference(q), InvalidArgument);
  q.per_device_batch = 1.0;
  q.num_devices = 0;
  EXPECT_THROW(m.predict_inference(q), InvalidArgument);
}

TEST(ConvMeterTest, JsonRoundTripInference) {
  // Through the full text round trip — dump writes shortest-round-trip
  // doubles, so the reloaded model predicts bit-identically.
  const ConvMeter m = ConvMeter::fit_inference(planted_set(false));
  const ConvMeter back =
      ConvMeter::from_json(json::parse(json::dump(m.to_json())));
  EXPECT_EQ(back.feature_set(), m.feature_set());
  QueryPoint q;
  q.metrics_b1.flops = 2e9;
  q.metrics_b1.conv_inputs = 4e6;
  q.metrics_b1.conv_outputs = 5e6;
  q.per_device_batch = 4.0;
  EXPECT_DOUBLE_EQ(m.predict_inference(q), back.predict_inference(q));
  EXPECT_DOUBLE_EQ(m.forward_relative_sigma(), back.forward_relative_sigma());
}

TEST(ConvMeterTest, JsonRoundTripTraining) {
  const ConvMeter m = ConvMeter::fit_training(planted_set(true));
  const ConvMeter back =
      ConvMeter::from_json(json::parse(json::dump(m.to_json())));
  EXPECT_TRUE(back.has_training_model());
  EXPECT_EQ(back.multi_node(), m.multi_node());
  QueryPoint q;
  q.metrics_b1.flops = 2e9;
  q.metrics_b1.conv_inputs = 4e6;
  q.metrics_b1.conv_outputs = 5e6;
  q.metrics_b1.weights = 2e7;
  q.metrics_b1.layers = 52.0;
  q.per_device_batch = 4.0;
  q.num_devices = 4;
  EXPECT_DOUBLE_EQ(m.predict_train_step(q).step,
                   back.predict_train_step(q).step);
}

TEST(ConvMeterTest, MalformedJsonRejected) {
  // Not an object.
  EXPECT_THROW(ConvMeter::from_json(json::parse("[]")), ParseError);
  // No forward coefficient block.
  EXPECT_THROW(ConvMeter::from_json(json::parse(
                   R"({"feature_set": "combined", "multi_node": false,
                       "fwd_rel_sigma": 0.0, "models": {}})")),
               ParseError);
  // Unknown coefficient block tag.
  EXPECT_THROW(ConvMeter::from_json(json::parse(
                   R"({"feature_set": "combined", "multi_node": false,
                       "fwd_rel_sigma": 0.0,
                       "models": {"sideways": [1.0, 2.0]}})")),
               ParseError);
}

TEST(ConvMeterTest, SingleMetricFeatureSetSupported) {
  const ConvMeter m =
      ConvMeter::fit_inference(planted_set(false), FeatureSet::kFlopsOnly);
  QueryPoint q;
  q.metrics_b1.flops = 1e9;
  q.per_device_batch = 8.0;
  EXPECT_GT(m.predict_inference(q), 0.0);
}

}  // namespace
}  // namespace convmeter

namespace convmeter {
namespace {

// ---- metamorphic properties of the fitted predictor -----------------------

TEST(ConvMeterPropertyTest, InferencePredictionIsAffineInBatch) {
  // Eq. 3: T(b) = b * k + c4, so increments must be constant in b.
  const ConvMeter m = ConvMeter::fit_inference(planted_set(false));
  QueryPoint q;
  q.metrics_b1.flops = 3e9;
  q.metrics_b1.conv_inputs = 5e6;
  q.metrics_b1.conv_outputs = 7e6;
  q.per_device_batch = 8.0;
  const double t8 = m.predict_inference(q);
  q.per_device_batch = 16.0;
  const double t16 = m.predict_inference(q);
  q.per_device_batch = 24.0;
  const double t24 = m.predict_inference(q);
  EXPECT_NEAR(t16 - t8, t24 - t16, 1e-9 * std::fabs(t16));
}

TEST(ConvMeterPropertyTest, PredictionDependsOnlyOnMetrics) {
  const ConvMeter m = ConvMeter::fit_training(planted_set(true));
  QueryPoint a;
  a.metrics_b1.flops = 2e9;
  a.metrics_b1.conv_inputs = 4e6;
  a.metrics_b1.conv_outputs = 5e6;
  a.metrics_b1.weights = 2e7;
  a.metrics_b1.layers = 80;
  a.per_device_batch = 32;
  a.num_devices = 8;
  a.num_nodes = 2;
  QueryPoint b = a;  // identical metrics -> identical prediction
  EXPECT_DOUBLE_EQ(m.predict_train_step(a).step, m.predict_train_step(b).step);
}

TEST(ConvMeterPropertyTest, SameMiniBatchSamePhaseCompute) {
  // With b = B/N fixed, the forward prediction must not depend on N.
  const ConvMeter m = ConvMeter::fit_training(planted_set(true));
  QueryPoint q;
  q.metrics_b1.flops = 2e9;
  q.metrics_b1.conv_inputs = 4e6;
  q.metrics_b1.conv_outputs = 5e6;
  q.metrics_b1.weights = 2e7;
  q.metrics_b1.layers = 80;
  q.per_device_batch = 32;
  q.num_devices = 4;
  q.num_nodes = 1;
  const double fwd4 = m.predict_train_step(q).fwd;
  q.num_devices = 16;
  q.num_nodes = 4;
  const double fwd16 = m.predict_train_step(q).fwd;
  EXPECT_DOUBLE_EQ(fwd4, fwd16);
}

TEST(ConvMeterPropertyTest, MoreDevicesMoreGradTime) {
  const ConvMeter m = ConvMeter::fit_training(planted_set(true));
  QueryPoint q;
  q.metrics_b1.flops = 2e9;
  q.metrics_b1.conv_inputs = 4e6;
  q.metrics_b1.conv_outputs = 5e6;
  q.metrics_b1.weights = 2e7;
  q.metrics_b1.layers = 80;
  q.per_device_batch = 32;
  q.num_devices = 4;
  const double g4 = m.predict_train_step(q).grad;
  q.num_devices = 32;
  q.num_nodes = 8;
  const double g32 = m.predict_train_step(q).grad;
  EXPECT_GT(g32, g4);  // planted c3 > 0
}

}  // namespace
}  // namespace convmeter

namespace convmeter {
namespace {

TEST(PredictionIntervalTest, NoiseFreeFitHasTightBand) {
  const ConvMeter m = ConvMeter::fit_inference(planted_set(false));
  QueryPoint q;
  q.metrics_b1.flops = 4e9;
  q.metrics_b1.conv_inputs = 8e6;
  q.metrics_b1.conv_outputs = 1e7;
  q.per_device_batch = 16;
  const PredictionInterval p = m.predict_inference_interval(q);
  EXPECT_DOUBLE_EQ(p.value, m.predict_inference(q));
  // Planted data is exactly linear -> near-zero residual sigma.
  EXPECT_LT(p.relative_sigma, 1e-6);
  EXPECT_NEAR(p.low, p.value, 1e-6 * p.value);
  EXPECT_NEAR(p.high, p.value, 1e-6 * p.value);
}

TEST(PredictionIntervalTest, NoisyFitHasWiderBand) {
  auto samples = planted_set(false);
  Rng rng(404);
  for (auto& s : samples) s.t_infer *= rng.lognormal_factor(0.2);
  const ConvMeter m = ConvMeter::fit_inference(samples);
  EXPECT_GT(m.forward_relative_sigma(), 0.05);
  QueryPoint q;
  q.metrics_b1.flops = 4e9;
  q.metrics_b1.conv_inputs = 8e6;
  q.metrics_b1.conv_outputs = 1e7;
  q.per_device_batch = 16;
  const PredictionInterval p = m.predict_inference_interval(q);
  EXPECT_LT(p.low, p.value);
  EXPECT_GT(p.high, p.value);
  // The band is symmetric in relative terms around the point estimate.
  EXPECT_NEAR(p.high - p.value, p.value - p.low, 1e-9 * p.value);
}

TEST(PredictionIntervalTest, LowIsFlooredAtZero) {
  auto samples = planted_set(false);
  Rng rng(405);
  for (auto& s : samples) s.t_infer *= rng.lognormal_factor(1.5);  // wild
  const ConvMeter m = ConvMeter::fit_inference(samples);
  QueryPoint q;
  q.metrics_b1.flops = 1e9;
  q.metrics_b1.conv_inputs = 2e6;
  q.metrics_b1.conv_outputs = 2.5e6;
  q.per_device_batch = 1;
  const PredictionInterval p = m.predict_inference_interval(q);
  EXPECT_GE(p.low, 0.0);
}

}  // namespace
}  // namespace convmeter
