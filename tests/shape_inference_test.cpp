// Unit and property tests for shape inference, including a parameterized
// sweep over convolution configurations checked against the closed-form
// PyTorch rule.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "graph/graph.hpp"
#include "graph/shape_inference.hpp"

namespace convmeter {
namespace {

TEST(ConvShapeTest, BasicStrideAndPad) {
  // 224 -> (224 + 2*3 - 7)/2 + 1 = 112 (ResNet stem).
  const Shape out = conv2d_output_shape(Conv2dAttrs::square(3, 64, 7, 2, 3),
                                        Shape::nchw(1, 3, 224, 224));
  EXPECT_EQ(out, Shape::nchw(1, 64, 112, 112));
}

TEST(ConvShapeTest, DilationExpandsReceptiveField) {
  Conv2dAttrs a = Conv2dAttrs::square(1, 1, 3, 1, 0);
  a.dilation_h = a.dilation_w = 2;  // effective kernel 5
  const Shape out = conv2d_output_shape(a, Shape::nchw(1, 1, 9, 9));
  EXPECT_EQ(out.height(), 5);
}

TEST(ConvShapeTest, ChannelMismatchThrows) {
  EXPECT_THROW(conv2d_output_shape(Conv2dAttrs::square(4, 8, 3),
                                   Shape::nchw(1, 3, 8, 8)),
               InvalidArgument);
}

TEST(ConvShapeTest, EmptyOutputThrows) {
  EXPECT_THROW(conv2d_output_shape(Conv2dAttrs::square(1, 1, 5),
                                   Shape::nchw(1, 1, 3, 3)),
               InvalidArgument);
}

TEST(PoolShapeTest, FloorVsCeilMode) {
  // 14 with k3 s2: floor -> 6, ceil -> 7 (SqueezeNet uses ceil mode).
  const Shape in = Shape::nchw(1, 4, 14, 14);
  EXPECT_EQ(pool2d_output_shape(Pool2dAttrs::square(3, 2), in).height(), 6);
  EXPECT_EQ(pool2d_output_shape(Pool2dAttrs::square(3, 2, 0, true), in).height(),
            7);
  // 13 with k3 s2: both modes agree on 6.
  const Shape in13 = Shape::nchw(1, 4, 13, 13);
  EXPECT_EQ(pool2d_output_shape(Pool2dAttrs::square(3, 2), in13).height(), 6);
  EXPECT_EQ(
      pool2d_output_shape(Pool2dAttrs::square(3, 2, 0, true), in13).height(),
      6);
}

TEST(PoolShapeTest, CeilModeWindowMustStartInsideInput) {
  // 4 with k2 s2 pad1 ceil: naive ceil gives 3 but the last window would
  // start beyond the padded input, so PyTorch clamps to 2... here:
  // (4 + 2 - 2 + 1)/2 + 1 = 3; check start (3-1)*2 = 4 >= 4 + 1? No -> 3.
  const Shape in = Shape::nchw(1, 1, 4, 4);
  Pool2dAttrs a = Pool2dAttrs::square(2, 2, 1, true);
  EXPECT_EQ(pool2d_output_shape(a, in).height(), 3);
}

/// Parameterized sweep: (image, kernel, stride, pad).
class ConvShapeSweep
    : public ::testing::TestWithParam<std::tuple<int, int, int, int>> {};

TEST_P(ConvShapeSweep, MatchesClosedForm) {
  const auto [image, kernel, stride, pad] = GetParam();
  const std::int64_t expected = (image + 2 * pad - kernel) / stride + 1;
  if (expected <= 0) GTEST_SKIP() << "infeasible configuration";
  const Shape out =
      conv2d_output_shape(Conv2dAttrs::square(3, 16, kernel, stride, pad),
                          Shape::nchw(2, 3, image, image));
  EXPECT_EQ(out.height(), expected);
  EXPECT_EQ(out.width(), expected);
  EXPECT_EQ(out.batch(), 2);
  EXPECT_EQ(out.channels(), 16);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ConvShapeSweep,
    ::testing::Combine(::testing::Values(7, 14, 32, 56, 224),
                       ::testing::Values(1, 3, 5, 7),
                       ::testing::Values(1, 2),
                       ::testing::Values(0, 1, 3)));

TEST(GraphInferenceTest, ResidualBlockShapes) {
  Graph g("res");
  NodeId x = g.input(8);
  NodeId y = g.conv2d("c1", x, Conv2dAttrs::square(8, 8, 3, 1, 1));
  y = g.batch_norm("b1", y, 8);
  y = g.add("add", y, x);
  g.activation("r", y, ActKind::kReLU);
  const ShapeMap shapes = infer_shapes(g, Shape::nchw(4, 8, 16, 16));
  for (const auto& s : shapes) EXPECT_EQ(s, Shape::nchw(4, 8, 16, 16));
}

TEST(GraphInferenceTest, ElementwiseMismatchThrows) {
  Graph g("bad-add");
  NodeId x = g.input(8);
  NodeId y = g.conv2d("c1", x, Conv2dAttrs::square(8, 4, 1));
  g.add("add", y, x);
  EXPECT_THROW(infer_shapes(g, Shape::nchw(1, 8, 8, 8)), InvalidArgument);
}

TEST(GraphInferenceTest, MultiplyBroadcastsSeGate) {
  Graph g("se");
  NodeId x = g.input(8);
  NodeId s = g.adaptive_avg_pool("pool", x, 1, 1);
  s = g.conv2d("fc", s, Conv2dAttrs::square(8, 8, 1, 1, 0, 1, true));
  NodeId out = g.multiply("scale", x, s);
  const ShapeMap shapes = infer_shapes(g, Shape::nchw(2, 8, 6, 6));
  EXPECT_EQ(shapes[static_cast<std::size_t>(out)], Shape::nchw(2, 8, 6, 6));
}

TEST(GraphInferenceTest, ConcatSumsChannels) {
  Graph g("cat");
  NodeId x = g.input(4);
  NodeId a = g.conv2d("a", x, Conv2dAttrs::square(4, 6, 1));
  NodeId b = g.conv2d("b", x, Conv2dAttrs::square(4, 10, 1));
  NodeId c = g.concat("cat", {a, b});
  const ShapeMap shapes = infer_shapes(g, Shape::nchw(1, 4, 5, 5));
  EXPECT_EQ(shapes[static_cast<std::size_t>(c)].channels(), 16);
}

TEST(GraphInferenceTest, ConcatSpatialMismatchThrows) {
  Graph g("cat-bad");
  NodeId x = g.input(4);
  NodeId a = g.conv2d("a", x, Conv2dAttrs::square(4, 6, 1));
  NodeId b = g.conv2d("b", x, Conv2dAttrs::square(4, 6, 1, 2));
  g.concat("cat", {a, b});
  EXPECT_THROW(infer_shapes(g, Shape::nchw(1, 4, 8, 8)), InvalidArgument);
}

TEST(GraphInferenceTest, FlattenAndLinear) {
  Graph g("fc");
  NodeId x = g.input(3);
  x = g.adaptive_avg_pool("pool", x, 2, 2);
  x = g.flatten("flat", x);
  x = g.linear("fc", x, LinearAttrs{12, 10, true});
  const ShapeMap shapes = infer_shapes(g, Shape::nchw(5, 3, 9, 9));
  EXPECT_EQ(shapes.back(), Shape({5, 10}));
}

TEST(GraphInferenceTest, LinearFeatureMismatchThrows) {
  Graph g("fc-bad");
  NodeId x = g.input(3);
  x = g.adaptive_avg_pool("pool", x, 1, 1);
  x = g.flatten("flat", x);
  g.linear("fc", x, LinearAttrs{4, 10, true});
  EXPECT_THROW(infer_shapes(g, Shape::nchw(1, 3, 8, 8)), InvalidArgument);
}

TEST(GraphInferenceTest, WrongInputChannelsThrows) {
  Graph g("chan");
  g.input(3);
  EXPECT_THROW(infer_shapes(g, Shape::nchw(1, 4, 8, 8)), InvalidArgument);
}

TEST(GraphInferenceTest, AdaptivePoolProducesRequestedSize) {
  Graph g("ap");
  NodeId x = g.input(2);
  g.adaptive_avg_pool("pool", x, 3, 5);
  const ShapeMap shapes = infer_shapes(g, Shape::nchw(1, 2, 17, 13));
  EXPECT_EQ(shapes.back(), Shape::nchw(1, 2, 3, 5));
}

}  // namespace
}  // namespace convmeter
