// Executor tests: real forward passes over zoo models at small resolutions,
// determinism, timing bookkeeping, and agreement between the executed
// output shape and shape inference.
#include <gtest/gtest.h>

#include <cmath>

#include "exec/executor.hpp"
#include "graph/shape_inference.hpp"
#include "metrics/metrics.hpp"
#include "models/zoo.hpp"

namespace convmeter {
namespace {

TEST(ExecutorTest, RunsTinyGraph) {
  Graph g("tiny");
  NodeId x = g.input(3);
  x = g.conv2d("c", x, Conv2dAttrs::square(3, 4, 3, 1, 1));
  x = g.activation("r", x, ActKind::kReLU);
  x = g.adaptive_avg_pool("p", x, 1, 1);
  x = g.flatten("f", x);
  g.linear("fc", x, LinearAttrs{4, 10, true});

  Executor exec(1);
  const ExecutionResult res = exec.run_random(g, Shape::nchw(2, 3, 8, 8));
  EXPECT_EQ(res.output.shape(), Shape({2, 10}));
  EXPECT_GT(res.total_seconds, 0.0);
  EXPECT_EQ(res.layers.size(), g.size());
}

TEST(ExecutorTest, DeterministicAcrossRuns) {
  const Graph g = models::build("squeezenet1_1");
  Executor exec(1);
  const ExecutionResult a = exec.run_random(g, Shape::nchw(1, 3, 64, 64), 7);
  const ExecutionResult b = exec.run_random(g, Shape::nchw(1, 3, 64, 64), 7);
  EXPECT_EQ(a.output.max_abs_diff(b.output), 0.0f);
}

TEST(ExecutorTest, DifferentSeedsChangeOutput) {
  const Graph g = models::build("squeezenet1_1");
  Executor exec(1);
  const ExecutionResult a = exec.run_random(g, Shape::nchw(1, 3, 64, 64), 7);
  const ExecutionResult b = exec.run_random(g, Shape::nchw(1, 3, 64, 64), 8);
  EXPECT_GT(a.output.max_abs_diff(b.output), 0.0f);
}

TEST(ExecutorTest, OutputsAreFinite) {
  const Graph g = models::build("mobilenet_v3_small");
  Executor exec(1);
  const ExecutionResult res = exec.run_random(g, Shape::nchw(1, 3, 64, 64));
  for (const float v : res.output.data()) {
    ASSERT_TRUE(std::isfinite(v));
  }
}

TEST(ExecutorTest, LayerTimesSumBelowTotal) {
  const Graph g = models::build("squeezenet1_1");
  Executor exec(1);
  const ExecutionResult res = exec.run_random(g, Shape::nchw(1, 3, 64, 64));
  double sum = 0.0;
  for (const LayerTiming& t : res.layers) {
    EXPECT_GE(t.seconds, 0.0);
    sum += t.seconds;
  }
  EXPECT_LE(sum, res.total_seconds * 1.5 + 1e-3);
}

/// Parameterized: a slice of the zoo runs end to end at a small resolution
/// and produces logits of the right shape.
class ExecutorZooTest : public ::testing::TestWithParam<std::string> {};

TEST_P(ExecutorZooTest, ForwardPassShapeMatchesInference) {
  const Graph g = models::build(GetParam());
  const std::int64_t image = GetParam() == "inception_v3" ? 96 : 64;
  const Shape in = Shape::nchw(1, 3, image, image);
  const ShapeMap shapes = infer_shapes(g, in);
  Executor exec(0);
  const ExecutionResult res = exec.run_random(g, in);
  EXPECT_EQ(res.output.shape(),
            shapes[static_cast<std::size_t>(g.output_id())]);
}

INSTANTIATE_TEST_SUITE_P(Zoo, ExecutorZooTest,
                         ::testing::Values("resnet18", "squeezenet1_0",
                                           "mobilenet_v2",
                                           "mobilenet_v3_small",
                                           "efficientnet_b0",
                                           "regnet_x_400mf"),
                         [](const auto& info) { return info.param; });

TEST(ExecutorTest, ConvTimeGrowsWithWork) {
  // A real-measurement sanity check feeding the simulator's design: more
  // FLOPs take longer. Use a 16x work ratio so scheduling noise cannot
  // invert the ordering.
  Graph small("small");
  NodeId s = small.input(8);
  small.conv2d("c", s, Conv2dAttrs::square(8, 8, 3, 1, 1));
  Graph big("big");
  NodeId b = big.input(8);
  big.conv2d("c", b, Conv2dAttrs::square(8, 128, 3, 1, 1));

  Executor exec(1);
  // Warm up allocators.
  exec.run_random(small, Shape::nchw(1, 8, 64, 64));
  double t_small = 0.0;
  double t_big = 0.0;
  for (int i = 0; i < 3; ++i) {
    t_small += exec.run_random(small, Shape::nchw(1, 8, 64, 64)).total_seconds;
    t_big += exec.run_random(big, Shape::nchw(1, 8, 64, 64)).total_seconds;
  }
  EXPECT_GT(t_big, t_small);
}

}  // namespace
}  // namespace convmeter
