// Metric-extraction tests: hand-computed FLOP counts, the batch-linearity
// property (Eq. 3's foundation), and golden GFLOP values for zoo models.
#include <gtest/gtest.h>

#include "metrics/metrics.hpp"
#include "models/zoo.hpp"

namespace convmeter {
namespace {

Graph single_conv(Conv2dAttrs attrs) {
  Graph g("one-conv");
  NodeId x = g.input(attrs.in_channels);
  g.conv2d("c", x, attrs);
  return g;
}

TEST(MetricsTest, ConvFlopsHandComputed) {
  // 3x3 conv, 4->8 channels, 10x10 input with pad 1 -> 10x10 output.
  // FLOPs = 2 * (8*10*10) * (4*9) = 57600.
  const Graph g = single_conv(Conv2dAttrs::square(4, 8, 3, 1, 1));
  const GraphMetrics m = compute_metrics(g, Shape::nchw(1, 4, 10, 10));
  EXPECT_DOUBLE_EQ(m.flops, 57600.0);
  EXPECT_DOUBLE_EQ(m.conv_inputs, 400.0);   // 4*10*10
  EXPECT_DOUBLE_EQ(m.conv_outputs, 800.0);  // 8*10*10
  EXPECT_DOUBLE_EQ(m.weights, 288.0);       // 8*4*9
  EXPECT_DOUBLE_EQ(m.layers, 1.0);
}

TEST(MetricsTest, ConvBiasAddsOneFlopPerOutput) {
  const Graph with = single_conv(Conv2dAttrs::square(4, 8, 3, 1, 1, 1, true));
  const Graph without = single_conv(Conv2dAttrs::square(4, 8, 3, 1, 1));
  const double delta =
      compute_metrics(with, Shape::nchw(1, 4, 10, 10)).flops -
      compute_metrics(without, Shape::nchw(1, 4, 10, 10)).flops;
  EXPECT_DOUBLE_EQ(delta, 800.0);
}

TEST(MetricsTest, GroupedConvDividesWork) {
  const Graph dense = single_conv(Conv2dAttrs::square(8, 8, 3, 1, 1));
  const Graph dw = single_conv(Conv2dAttrs::square(8, 8, 3, 1, 1, 8));
  const double fd = compute_metrics(dense, Shape::nchw(1, 8, 10, 10)).flops;
  const double fg = compute_metrics(dw, Shape::nchw(1, 8, 10, 10)).flops;
  EXPECT_DOUBLE_EQ(fd, 8.0 * fg);
}

TEST(MetricsTest, LinearFlops) {
  Graph g("fc");
  NodeId x = g.input(3);
  x = g.adaptive_avg_pool("p", x, 1, 1);
  x = g.flatten("f", x);
  g.linear("fc", x, LinearAttrs{3, 10, true});
  const GraphMetrics m = compute_metrics(g, Shape::nchw(4, 3, 8, 8));
  // Linear: batch 4 * (2*3*10 + 10) = 280; adaptive pool: 4*3*64 = 768.
  EXPECT_DOUBLE_EQ(m.flops, 280.0 + 768.0);
}

TEST(MetricsTest, LayersCountsParameterizedLayersOnly) {
  Graph g("mix");
  NodeId x = g.input(3);
  x = g.conv2d("c", x, Conv2dAttrs::square(3, 8, 3, 1, 1));
  x = g.batch_norm("b", x, 8);
  x = g.activation("r", x, ActKind::kReLU);
  x = g.max_pool("p", x, Pool2dAttrs::square(2, 2));
  x = g.adaptive_avg_pool("ap", x, 1, 1);
  x = g.flatten("f", x);
  g.linear("fc", x, LinearAttrs{8, 10, true});
  const GraphMetrics m = compute_metrics(g, Shape::nchw(1, 3, 8, 8));
  EXPECT_DOUBLE_EQ(m.layers, 3.0);  // conv + bn + linear
}

/// Property (Sec. 3): inputs, outputs, and FLOPs scale linearly with the
/// batch size; weights and layers do not.
class BatchLinearity : public ::testing::TestWithParam<std::string> {};

TEST_P(BatchLinearity, MetricsScaleWithBatch) {
  const Graph g = models::build(GetParam());
  const std::int64_t image = models::default_image_size(GetParam());
  const GraphMetrics m1 =
      compute_metrics(g, Shape::nchw(1, 3, image, image));
  const GraphMetrics m8 =
      compute_metrics(g, Shape::nchw(8, 3, image, image));
  EXPECT_NEAR(m8.flops, 8.0 * m1.flops, 1e-6 * m8.flops);
  EXPECT_NEAR(m8.conv_inputs, 8.0 * m1.conv_inputs, 1e-9);
  EXPECT_NEAR(m8.conv_outputs, 8.0 * m1.conv_outputs, 1e-9);
  EXPECT_DOUBLE_EQ(m8.weights, m1.weights);
  EXPECT_DOUBLE_EQ(m8.layers, m1.layers);
  // scaled_by_batch reproduces the direct computation (Eq. 3).
  const GraphMetrics scaled = m1.scaled_by_batch(8.0);
  EXPECT_NEAR(scaled.flops, m8.flops, 1e-6 * m8.flops);
  EXPECT_DOUBLE_EQ(scaled.conv_inputs, m8.conv_inputs);
}

INSTANTIATE_TEST_SUITE_P(
    Sample, BatchLinearity,
    ::testing::Values("alexnet", "resnet50", "mobilenet_v2", "densenet121",
                      "squeezenet1_0", "efficientnet_b0"),
    [](const auto& info) { return info.param; });

/// Published MAC counts x2 (our convention counts multiply and add
/// separately); tolerance 3% to absorb elementwise accounting differences.
struct FlopsGolden {
  const char* name;
  double gflops;
};

class FlopsGoldenTest : public ::testing::TestWithParam<FlopsGolden> {};

TEST_P(FlopsGoldenTest, MatchesPublishedValue) {
  const GraphMetrics m = compute_metrics_b1(
      models::build(GetParam().name),
      models::default_image_size(GetParam().name));
  EXPECT_NEAR(m.flops / 1e9, GetParam().gflops, 0.03 * GetParam().gflops)
      << GetParam().name;
}

INSTANTIATE_TEST_SUITE_P(
    Golden, FlopsGoldenTest,
    ::testing::Values(FlopsGolden{"alexnet", 1.43},
                      FlopsGolden{"vgg16", 31.0},
                      FlopsGolden{"resnet18", 3.64},
                      FlopsGolden{"resnet50", 8.21},
                      FlopsGolden{"densenet121", 5.72},
                      FlopsGolden{"inception_v3", 11.4},
                      FlopsGolden{"mobilenet_v2", 0.62},
                      FlopsGolden{"regnet_x_8gf", 16.0}),
    [](const auto& info) { return std::string(info.param.name); });

TEST(MetricsTest, PerLayerWorkSumsToGraphFlops) {
  const Graph g = models::build("resnet18");
  const Shape in = Shape::nchw(1, 3, 224, 224);
  double sum = 0.0;
  for (const LayerWork& w : per_layer_work(g, in)) sum += w.flops;
  EXPECT_NEAR(sum, compute_metrics(g, in).flops, 1.0);
}

TEST(MetricsTest, PerLayerWorkParamsSumToParameterCount) {
  const Graph g = models::build("resnet50");
  const Shape in = Shape::nchw(1, 3, 224, 224);
  double params = 0.0;
  for (const LayerWork& w : per_layer_work(g, in)) params += w.param_elems;
  EXPECT_DOUBLE_EQ(params, static_cast<double>(g.parameter_count()));
}

TEST(MetricsTest, StructuralNodesHaveZeroFlops) {
  Graph g("structural");
  NodeId x = g.input(4);
  NodeId a = g.activation("a", x, ActKind::kReLU);
  NodeId b = g.activation("b", x, ActKind::kReLU);
  NodeId cat = g.concat("cat", {a, b});
  NodeId f = g.flatten("flat", cat);
  g.dropout("drop", f, 0.5);
  const auto work = per_layer_work(g, Shape::nchw(1, 4, 4, 4));
  EXPECT_EQ(work[static_cast<std::size_t>(cat)].flops, 0.0);
  EXPECT_EQ(work[static_cast<std::size_t>(f)].flops, 0.0);
  EXPECT_EQ(work[0].flops, 0.0);  // input node
}

TEST(MetricsTest, ScaledByBatchRejectsNonPositive) {
  GraphMetrics m;
  EXPECT_THROW(m.scaled_by_batch(0.0), InvalidArgument);
}

TEST(MetricsTest, InputsOnlyCountConvLayers) {
  // A pooling layer between convs must not contribute to I/O sums.
  Graph g("pool-between");
  NodeId x = g.input(4);
  x = g.conv2d("c1", x, Conv2dAttrs::square(4, 8, 3, 1, 1));
  x = g.max_pool("p", x, Pool2dAttrs::square(2, 2));
  g.conv2d("c2", x, Conv2dAttrs::square(8, 8, 3, 1, 1));
  const GraphMetrics m = compute_metrics(g, Shape::nchw(1, 4, 8, 8));
  // I = 4*64 (c1 input) + 8*16 (c2 input after pool) = 256 + 128.
  EXPECT_DOUBLE_EQ(m.conv_inputs, 384.0);
  // O = 8*64 + 8*16 = 512 + 128.
  EXPECT_DOUBLE_EQ(m.conv_outputs, 640.0);
}

}  // namespace
}  // namespace convmeter
