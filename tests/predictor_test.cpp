// Predictor-layer tests: registry construction, the polymorphic
// fit/predict contract, versioned JSON model files (bit-identical round
// trips for every family), envelope validation, the generic LOO harness,
// and the fit/predict observability metrics.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "obs/metrics_registry.hpp"
#include "obs/trace.hpp"
#include "predict/evaluate.hpp"
#include "predict/predictors.hpp"
#include "predict/registry.hpp"

namespace convmeter {
namespace {

/// Planted samples following the paper's exact functional forms, with
/// model names every family (including dippm's parser) accepts.
std::vector<RuntimeSample> planted_samples(bool multi_device) {
  std::vector<RuntimeSample> samples;
  int mdl = 0;
  for (const double f : {1e9, 3e9, 9e9, 27e9}) {
    for (const double batch : {1.0, 4.0, 8.0, 32.0, 64.0}) {
      for (const int devices :
           multi_device ? std::vector<int>{4, 8, 16} : std::vector<int>{1}) {
        RuntimeSample s;
        s.model = "net" + std::to_string(mdl % 4);
        s.device = "synthetic";
        s.image_size = 64;
        s.num_devices = devices;
        s.num_nodes = devices > 4 ? devices / 4 : 1;
        s.global_batch = static_cast<std::int64_t>(batch * devices);
        s.flops1 = f;
        s.inputs1 = f / 400.0;
        s.outputs1 = f / 320.0;
        s.weights = f / 80.0;
        s.layers = 40.0 + f / 1e9;
        s.t_fwd = batch * (1e-12 * f + 2e-9 * s.inputs1 + 3e-9 * s.outputs1) +
                  1e-4;
        s.t_infer = s.t_fwd;
        s.t_bwd = 2.0 * s.t_fwd;
        s.t_grad = 1e-5 * s.layers +
                   (devices > 1 ? 1e-10 * s.weights + 5e-5 * devices : 0.0);
        s.t_step = s.t_fwd + s.t_bwd + s.t_grad;
        samples.push_back(s);
      }
    }
    ++mdl;
  }
  return samples;
}

/// Samples over real zoo models, for the model-gated segmented family
/// (which derives its features from the zoo graphs, so synthetic "netN"
/// labels are rejected).
std::vector<RuntimeSample> zoo_samples() {
  std::vector<RuntimeSample> samples;
  int mdl = 0;
  for (const char* model :
       {"alexnet", "resnet18", "squeezenet1_1", "vit_ti_16"}) {
    ++mdl;
    for (const double batch : {1.0, 2.0, 4.0, 8.0}) {
      RuntimeSample s;
      s.model = model;
      s.device = "synthetic";
      s.image_size = 224;
      s.global_batch = static_cast<std::int64_t>(batch);
      s.t_infer = 1e-3 * mdl * batch + 1e-4;
      samples.push_back(s);
    }
  }
  return samples;
}

/// Cheap MLP hyperparameters so the learned families fit in milliseconds.
PredictorOptions fast_options() {
  PredictorOptions options;
  options.mlp.hidden = {8};
  options.mlp.epochs = 40;
  return options;
}

// ---- registry --------------------------------------------------------------

TEST(RegistryTest, AllPaperFamiliesRegistered) {
  const auto names = predictor_names();
  for (const char* expected :
       {"convmeter", "convmeter-fwd-only", "flops-only", "inputs-only",
        "outputs-only", "mlp", "paleo", "dippm", "segmented"}) {
    EXPECT_TRUE(std::find(names.begin(), names.end(), expected) != names.end())
        << expected;
  }
}

TEST(RegistryTest, EveryRegisteredNameConstructs) {
  for (const std::string& name : predictor_names()) {
    const auto p = make_predictor(name, fast_options());
    ASSERT_NE(p, nullptr) << name;
    EXPECT_EQ(p->name(), name);
  }
}

TEST(RegistryTest, UnknownNameListsRegisteredOnes) {
  try {
    make_predictor("no-such-family");
    FAIL() << "expected InvalidArgument";
  } catch (const InvalidArgument& e) {
    EXPECT_NE(std::string(e.what()).find("convmeter"), std::string::npos);
  }
}

TEST(RegistryTest, EntriesAreSortedAndDescribed) {
  const auto entries = PredictorRegistry::instance().entries();
  for (std::size_t i = 0; i < entries.size(); ++i) {
    EXPECT_FALSE(entries[i].description.empty()) << entries[i].name;
    if (i > 0) {
      EXPECT_LT(entries[i - 1].name, entries[i].name);
    }
  }
}

TEST(RegistryTest, PhaseOptionRetargetsLinearPredictor) {
  PredictorOptions options;
  options.phase = Phase::kBwdGrad;
  const auto p = make_predictor("convmeter-fwd-only", options);
  EXPECT_EQ(p->target(), Phase::kBwdGrad);
  EXPECT_EQ(make_predictor("convmeter-fwd-only")->target(), Phase::kInference);
}

// ---- fit/predict contract --------------------------------------------------

TEST(PredictorTest, PredictBeforeFitThrows) {
  const auto p = make_predictor("convmeter-fwd-only");
  EXPECT_FALSE(p->fitted());
  EXPECT_THROW(p->predict(planted_samples(false).front()), InvalidArgument);
}

TEST(PredictorTest, PaleoIsBornFitted) {
  const auto p = make_predictor("paleo");
  EXPECT_TRUE(p->fitted());
  EXPECT_GT(p->predict(planted_samples(false).front()), 0.0);
}

TEST(PredictorTest, SaveBeforeFitThrows) {
  EXPECT_THROW(make_predictor("convmeter")->save_json(), InvalidArgument);
}

TEST(PredictorTest, DippmRejectsUnparsableModel) {
  auto samples = planted_samples(false);
  const auto p = make_predictor("dippm", fast_options());
  p->fit(samples);
  RuntimeSample bad = samples.front();
  bad.model = "squeezenet1_0";
  EXPECT_THROW(p->predict(bad), InvalidArgument);
}

// ---- versioned JSON model files --------------------------------------------

TEST(ModelFileTest, EveryFamilyRoundTripsBitIdentically) {
  for (const std::string& name : predictor_names()) {
    const auto samples =
        name == "segmented" ? zoo_samples() : planted_samples(false);
    const auto fitted = make_predictor(name, fast_options());
    fitted->fit(samples);
    const std::string text = fitted->save_json();
    const auto loaded = load_predictor_json(text, fast_options());
    ASSERT_EQ(loaded->name(), name);
    EXPECT_TRUE(loaded->fitted());
    for (const RuntimeSample& s : samples) {
      EXPECT_DOUBLE_EQ(fitted->predict(s), loaded->predict(s))
          << name << " on " << s.model;
    }
    // Saving the reloaded predictor reproduces the identical file.
    EXPECT_EQ(loaded->save_json(), text) << name;
  }
}

TEST(ModelFileTest, MultiNodeConvMeterTrainingRoundTrip) {
  const auto samples = planted_samples(true);
  const auto fitted = make_predictor("convmeter");
  fitted->fit(samples);
  const auto loaded = load_predictor_json(fitted->save_json());
  EXPECT_EQ(loaded->target(), Phase::kTrainStep);
  for (const RuntimeSample& s : samples) {
    EXPECT_DOUBLE_EQ(fitted->predict(s), loaded->predict(s));
  }
  // The wrapped model keeps its multi-node gradient block across the trip.
  const auto* cm = dynamic_cast<const ConvMeterPredictor*>(loaded.get());
  ASSERT_NE(cm, nullptr);
  EXPECT_TRUE(cm->model().has_training_model());
  EXPECT_TRUE(cm->model().multi_node());
}

TEST(ModelFileTest, EnvelopeCarriesFormatVersionAndName) {
  const auto p = make_predictor("flops-only");
  p->fit(planted_samples(false));
  const json::Value doc = json::parse(p->save_json());
  EXPECT_EQ(doc.at("format").as_string(), kModelFormatName);
  EXPECT_EQ(doc.at("version").as_number(), kModelFormatVersion);
  EXPECT_EQ(doc.at("predictor").as_string(), "flops-only");
  EXPECT_TRUE(doc.at("model").is_object());
}

TEST(ModelFileTest, MalformedTextRejected) {
  EXPECT_THROW(load_predictor_json("not json at all"), ParseError);
  EXPECT_THROW(load_predictor_json("[1, 2, 3]"), ParseError);
  EXPECT_THROW(load_predictor_json(R"({"format": "something-else",
                                       "version": 1})"),
               ParseError);
}

TEST(ModelFileTest, VersionMismatchRejectedWithClearMessage) {
  try {
    load_predictor_json(R"({"format": "convmeter-predictor", "version": 2,
                            "predictor": "convmeter", "model": {}})");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("version 2"), std::string::npos) << msg;
    EXPECT_NE(msg.find("version 1"), std::string::npos) << msg;
  }
}

TEST(ModelFileTest, UnregisteredPredictorNameRejected) {
  EXPECT_THROW(
      load_predictor_json(R"({"format": "convmeter-predictor", "version": 1,
                              "predictor": "hal9000", "model": {}})"),
      ParseError);
}

TEST(ModelFileTest, WrongFamilyRejectedOnDirectLoad) {
  const auto flops = make_predictor("flops-only");
  flops->fit(planted_samples(false));
  const auto other = make_predictor("convmeter");
  EXPECT_THROW(other->load_json(flops->save_json()), ParseError);
}

TEST(ModelFileTest, ConvMeterRequiresTrainingBlocks) {
  // A "convmeter" payload without the training-phase coefficient blocks
  // (e.g. repackaged from an inference-only fit) must be rejected.
  const ConvMeter inference_only =
      ConvMeter::fit_inference(planted_samples(false));
  json::Value::Object env;
  env.emplace("format", json::Value(std::string(kModelFormatName)));
  env.emplace("version",
              json::Value(static_cast<double>(kModelFormatVersion)));
  env.emplace("predictor", json::Value(std::string("convmeter")));
  env.emplace("model", inference_only.to_json());
  EXPECT_THROW(load_predictor_json(json::dump(json::Value(std::move(env)))),
               ParseError);
}

// ---- generic LOO harness ---------------------------------------------------

TEST(EvaluateLooTest, SkipsSamplesThePredictorRejects) {
  auto samples = planted_samples(false);
  // Rename one ConvNet to the family dippm's parser cannot read; its
  // held-out fold contributes only skips.
  std::size_t renamed = 0;
  for (auto& s : samples) {
    if (s.model == "net3") {
      s.model = "squeezenet1_0";
      ++renamed;
    }
  }
  ASSERT_GT(renamed, 0u);
  const LooResult r = evaluate_loo("dippm", samples, fast_options());
  EXPECT_EQ(r.skipped, renamed);
  EXPECT_EQ(r.pooled.count, samples.size() - renamed);
  for (const auto& g : r.per_group) {
    EXPECT_NE(g.group, "squeezenet1_0");
  }
}

TEST(EvaluateLooTest, FactoryOverloadMatchesRegistryOverload) {
  const auto samples = planted_samples(false);
  const LooResult by_name = evaluate_loo("convmeter-fwd-only", samples);
  // Hoisting the options outside the lambda sidesteps a GCC 12 spurious
  // -Wmaybe-uninitialized on the inlined default-argument temporary.
  const PredictorOptions options;
  const LooResult by_factory = evaluate_loo(
      [&options]() { return make_predictor("convmeter-fwd-only", options); },
      samples);
  EXPECT_DOUBLE_EQ(by_name.pooled.r2, by_factory.pooled.r2);
  EXPECT_DOUBLE_EQ(by_name.pooled.mape, by_factory.pooled.mape);
  EXPECT_EQ(by_name.per_group.size(), by_factory.per_group.size());
}

// ---- observability ---------------------------------------------------------

TEST(PredictorObsTest, FitAndPredictAreCounted) {
  auto& registry = obs::MetricsRegistry::instance();
  obs::set_enabled(true);
  const std::uint64_t fits_before = registry.counter("fit.calls").value();
  const std::uint64_t preds_before =
      registry.counter("predict.calls").value();
  const std::uint64_t fit_obs_before =
      registry.histogram("fit.seconds").count();

  const auto samples = planted_samples(false);
  const auto p = make_predictor("convmeter-fwd-only");
  p->fit(samples);
  p->predict(samples.front());
  p->predict(samples.back());

  EXPECT_EQ(registry.counter("fit.calls").value(), fits_before + 1);
  EXPECT_EQ(registry.counter("predict.calls").value(), preds_before + 2);
  EXPECT_EQ(registry.histogram("fit.seconds").count(), fit_obs_before + 1);
  obs::set_enabled(false);

  // Disabled: no further counting.
  p->predict(samples.front());
  EXPECT_EQ(registry.counter("predict.calls").value(), preds_before + 2);
}

}  // namespace
}  // namespace convmeter
