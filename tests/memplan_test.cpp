// Static memory-plan tests: liveness semantics (free-after-last-consumer,
// fusion aliasing, training pinning), the reuse report, budget diagnostics,
// and the zoo-wide static-vs-measured gate — for every built-in model in
// both phases, the static peak must bound the measured allocation-
// accounting peak from above and stay within a 1.25x tightness band.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/memplan.hpp"
#include "analysis/verifier.hpp"
#include "exec/executor.hpp"
#include "exec/trainer.hpp"
#include "models/zoo.hpp"
#include "tensor/alloc_tracker.hpp"
#include "tensor/tensor.hpp"

namespace convmeter::analysis {
namespace {

bool has_id(const VerifyReport& report, const std::string& id) {
  for (const Diagnostic& d : report.sink.diagnostics()) {
    if (d.id == id) return true;
  }
  return false;
}

/// conv -> relu -> pool -> flatten -> fc
Graph tiny_graph() {
  Graph g("tiny");
  NodeId x = g.input(3);
  x = g.conv2d("c", x, Conv2dAttrs::square(3, 4, 3, 1, 1));
  x = g.activation("r", x, ActKind::kReLU);
  x = g.adaptive_avg_pool("p", x, 1, 1);
  x = g.flatten("f", x);
  g.linear("fc", x, LinearAttrs{4, 10, true});
  return g;
}

TEST(LivenessTest, InferenceFreesAfterLastConsumer) {
  const Graph g = tiny_graph();
  const MemPlan plan =
      plan_memory(g, Shape::nchw(1, 3, 8, 8), /*training=*/false);
  ASSERT_EQ(plan.lifetimes.size(), g.size());
  // The input node's copy is consumed only by the conv.
  EXPECT_EQ(plan.lifetimes[0].last_use, 1);
  EXPECT_FALSE(plan.lifetimes[0].pinned);
  // The sink is never freed.
  EXPECT_EQ(plan.lifetimes[g.size() - 1].last_use, -1);
}

TEST(LivenessTest, FusedActivationAliasesItsProducer) {
  const Graph g = tiny_graph();
  const MemPlan plan =
      plan_memory(g, Shape::nchw(1, 3, 8, 8), /*training=*/false);
  // relu (node 2) fuses into the conv (node 1): the relu allocates nothing
  // and the conv's buffer lives until the relu's consumer (the pool).
  EXPECT_TRUE(plan.lifetimes[2].alias);
  EXPECT_EQ(plan.lifetimes[2].bytes, 0u);
  EXPECT_EQ(plan.lifetimes[1].last_use, 3);
}

TEST(LivenessTest, TrainingPinsEveryActivation) {
  const Graph g = tiny_graph();
  const MemPlan plan =
      plan_memory(g, Shape::nchw(1, 3, 8, 8), /*training=*/true);
  for (const TensorLifetime& lt : plan.lifetimes) {
    EXPECT_TRUE(lt.pinned);
    EXPECT_EQ(lt.last_use, -1);
    EXPECT_FALSE(lt.alias);  // the trainer never fuses
  }
  EXPECT_TRUE(plan.reuse.empty());
}

TEST(MemPlanTest, TimelineLiveBytesAreCumulative) {
  const Graph g = tiny_graph();
  const MemPlan plan =
      plan_memory(g, Shape::nchw(1, 3, 8, 8), /*training=*/false);
  ASSERT_EQ(plan.timeline.size(), g.size());
  for (const MemStep& s : plan.timeline) {
    EXPECT_LE(s.live_bytes, plan.peak_bytes);
  }
  EXPECT_GT(plan.peak_bytes, 0u);
  EXPECT_GE(plan.peak_node, 0);
  EXPECT_GT(plan.workspace_bytes, 0u);  // the conv and fc reserve packs
}

TEST(MemPlanTest, ReuseReportFindsDyingElementwiseInput) {
  // pool -> standalone relu: the pool's buffer dies at the relu and the
  // shapes match, so the relu could run in place. (A conv-fused relu must
  // NOT be reported — it is already in place.)
  Graph g("reuse");
  NodeId x = g.input(3);
  x = g.max_pool("p", x, Pool2dAttrs::square(2, 2, 0));
  g.activation("r", x, ActKind::kReLU);
  const MemPlan plan =
      plan_memory(g, Shape::nchw(1, 3, 8, 8), /*training=*/false);
  ASSERT_EQ(plan.reuse.size(), 1u);
  EXPECT_EQ(plan.reuse[0].node, 2);
  EXPECT_EQ(plan.reuse[0].input, 1);
  EXPECT_GT(plan.reuse[0].bytes, 0u);
}

TEST(MemPlanTest, OverBudgetIsAnErrorOnlyWhenBudgetSet) {
  const Graph g = tiny_graph();
  VerifyOptions options;
  options.input_shape = Shape::nchw(1, 3, 32, 32);
  const Verifier verifier;
  VerifyReport r = verifier.verify(g, options);
  EXPECT_TRUE(r.ok());
  EXPECT_FALSE(has_id(r, "memplan.over_budget"));
  EXPECT_TRUE(has_id(r, "memplan.peak"));

  options.memory_budget_bytes = 1024;  // far below any real model
  r = verifier.verify(g, options);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(has_id(r, "memplan.over_budget"));
}

TEST(MemPlanTest, WorkspaceBudgetDerivesFromDeviceMemory) {
  const Graph g = tiny_graph();
  VerifyOptions options;
  options.input_shape = Shape::nchw(1, 3, 32, 32);
  // Default: 1 GiB fallback, the tiny graph fits.
  EXPECT_EQ(options.effective_workspace_budget(), 1ull << 30);
  // A tiny device memory becomes the default workspace budget.
  options.device_memory_bytes = 64;
  EXPECT_EQ(options.effective_workspace_budget(), 64u);
  const Verifier verifier;
  EXPECT_TRUE(has_id(verifier.verify(g, options), "workspace.over_budget"));
  // An explicit override still wins over the device-derived default.
  options.workspace_budget_bytes = 1ull << 30;
  EXPECT_EQ(options.effective_workspace_budget(), 1ull << 30);
  EXPECT_FALSE(has_id(verifier.verify(g, options), "workspace.over_budget"));
}

TEST(MemPlanTest, TrainingNotesPinnedActivations) {
  const Graph g = tiny_graph();
  VerifyOptions options;
  options.input_shape = Shape::nchw(1, 3, 32, 32);
  options.training = true;
  const Verifier verifier;
  const VerifyReport r = verifier.verify(g, options);
  EXPECT_TRUE(has_id(r, "liveness.pinned"));
}

// ---- zoo-wide static-vs-measured gate ------------------------------------

/// Token-mixing MLPs bake the token count into their linear layers, so
/// they only run at their build resolution; everything else shrinks to
/// 64x64 to keep the measured runs fast.
std::int64_t gate_image(const std::string& name) {
  if (name.rfind("mlp_mixer", 0) == 0) {
    return models::default_image_size(name);
  }
  return 64;
}

/// static must bound measured from above and stay within 1.25x of it.
void expect_tight_bound(std::uint64_t static_bytes, std::uint64_t measured,
                        const std::string& what) {
  EXPECT_GE(static_bytes, measured) << what << ": static underestimates";
  EXPECT_LE(static_bytes, measured + measured / 4)
      << what << ": static exceeds the 1.25x tightness band (measured "
      << measured << ")";
}

class ZooMemGate : public ::testing::TestWithParam<std::string> {
 protected:
  void TearDown() override { memtrack::set_enabled(false); }
};

TEST_P(ZooMemGate, InferenceStaticPeakBoundsMeasured) {
  const std::string name = GetParam();
  const Graph g = models::build(name);
  const std::int64_t image = gate_image(name);
  const Shape input_shape = Shape::nchw(1, g.input_channels(), image, image);
  const MemPlan plan = plan_memory(g, input_shape, /*training=*/false);

  Executor exec(1);
  memtrack::set_enabled(true);
  Tensor input(input_shape);
  input.fill_random(42);
  memtrack::reset();  // peak starts at the live input tensor
  const ExecutionResult result = exec.run(g, input);
  const std::uint64_t measured = memtrack::peak_bytes();
  const std::uint64_t measured_ws = memtrack::workspace_high_water_bytes();
  ASSERT_GT(measured, 0u);

  expect_tight_bound(plan.peak_bytes, measured, name + " tensors");
  expect_tight_bound(plan.workspace_bytes, measured_ws, name + " workspace");
  EXPECT_FALSE(result.layers.empty());
  EXPECT_GT(result.layers.back().mem_peak_bytes, 0u);
}

TEST_P(ZooMemGate, TrainingStaticPeakBoundsMeasured) {
  const std::string name = GetParam();
  const Graph g = models::build(name);
  const std::int64_t image = gate_image(name);
  const Shape input_shape = Shape::nchw(1, g.input_channels(), image, image);
  const MemPlan plan = plan_memory(g, input_shape, /*training=*/true);

  memtrack::set_enabled(true);
  TrainerConfig config;
  config.num_threads = 1;
  Trainer trainer(g, config);  // parameter state is tracked
  Tensor input(input_shape);
  input.fill_random(42);
  memtrack::reset();  // peak starts at params + optimizer state + input
  const RealStepResult result = trainer.step(input, {0});
  ASSERT_GT(result.mem_peak_bytes, 0u);

  expect_tight_bound(plan.peak_bytes, result.mem_peak_bytes,
                     name + " tensors");
  expect_tight_bound(plan.workspace_bytes, result.mem_workspace_bytes,
                     name + " workspace");
}

INSTANTIATE_TEST_SUITE_P(Zoo, ZooMemGate,
                         ::testing::ValuesIn(models::available_models()),
                         [](const ::testing::TestParamInfo<std::string>& i) {
                           return i.param;
                         });

}  // namespace
}  // namespace convmeter::analysis
