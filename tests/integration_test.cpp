// End-to-end integration tests: full campaign -> fit -> leave-one-out
// pipelines over the simulated devices, asserting the *shapes* of the
// paper's findings (which predictor wins, error bands, scalability
// orderings) rather than exact numbers.
#include <gtest/gtest.h>

#include "baselines/dippm_like.hpp"
#include "backend/sim_backend.hpp"
#include "collect/campaign.hpp"
#include "core/convmeter.hpp"
#include "core/scalability.hpp"
#include "predict/evaluate.hpp"
#include "exec/executor.hpp"
#include "metrics/metrics.hpp"
#include "models/blocks.hpp"
#include "models/zoo.hpp"
#include "sim/cost_model.hpp"

namespace convmeter {
namespace {

std::vector<std::string> benchmark_models() {
  return {"alexnet",       "vgg16",           "resnet18",
          "resnet50",      "resnext50_32x4d", "squeezenet1_0",
          "mobilenet_v2",  "efficientnet_b0", "regnet_x_8gf",
          "densenet121"};
}

std::vector<RuntimeSample> gpu_inference_samples() {
  static const std::vector<RuntimeSample> samples = [] {
    SimInferenceBackend sim(a100_80gb());
    InferenceSweep sweep = InferenceSweep::paper_default(benchmark_models());
    sweep.repetitions = 2;
    return run_inference_campaign(sim, sweep);
  }();
  return samples;
}

TEST(IntegrationInference, PooledAccuracyInPaperBand) {
  const LooResult r = evaluate_loo("convmeter-fwd-only",
                                   gpu_inference_samples());
  // Paper (Fig. 3, GPU): R^2 = 0.96. Require at least a strong fit.
  EXPECT_GT(r.pooled.r2, 0.9);
  EXPECT_LT(r.pooled.nrmse, 0.2);
}

TEST(IntegrationInference, CombinedMetricsBeatEverySingleMetric) {
  // The Fig. 2 finding: FLOPs+Inputs+Outputs is the most accurate feature
  // set; FLOPs alone is the weakest kind of predictor on GPUs.
  const auto samples = gpu_inference_samples();
  const double r2_combined =
      evaluate_loo("convmeter-fwd-only", samples).pooled.r2;
  for (const char* name : {"flops-only", "inputs-only", "outputs-only"}) {
    EXPECT_GT(r2_combined, evaluate_loo(name, samples).pooled.r2) << name;
  }
  EXPECT_LT(evaluate_loo("flops-only", samples).pooled.r2, 0.7);
}

TEST(IntegrationInference, CpuCampaignAlsoFitsWell) {
  SimInferenceBackend sim(xeon_gold_5318y_core());
  InferenceSweep sweep = InferenceSweep::paper_default(benchmark_models());
  sweep.repetitions = 1;
  sweep.batch_sizes = {1, 4, 16, 64};  // CPU sweep uses smaller batches
  const auto samples = run_inference_campaign(sim, sweep);
  const LooResult r = evaluate_loo("convmeter-fwd-only", samples);
  EXPECT_GT(r.pooled.r2, 0.9);
}

TEST(IntegrationInference, UnseenModelPredictedWithoutRefit) {
  // Fit on all but wide_resnet50_2, then predict it from metrics alone.
  const auto samples = gpu_inference_samples();
  const ConvMeter model = ConvMeter::fit_inference(samples);
  const Graph unseen = models::build("wide_resnet50_2");
  QueryPoint q;
  q.metrics_b1 = compute_metrics_b1(unseen, 224);
  q.per_device_batch = 64.0;
  const double predicted = model.predict_inference(q);

  SimInferenceBackend sim(a100_80gb());
  const double actual = sim.simulator().expected(unseen, Shape::nchw(64, 3, 224, 224));
  EXPECT_GT(predicted, 0.4 * actual);
  EXPECT_LT(predicted, 2.5 * actual);
}

TEST(IntegrationTraining, SingleGpuStepErrorsInPaperBand) {
  SimTrainingBackend sim(a100_80gb(), nvlink_hdr200_fabric());
  TrainingSweep sweep = TrainingSweep::paper_single_gpu(benchmark_models());
  sweep.repetitions = 2;
  const auto samples = run_training_campaign(sim, sweep);
  const LooResult r = evaluate_loo("convmeter", samples);
  // Paper Table 3 single GPU: MAPE 0.18, R^2 0.88.
  EXPECT_LT(r.pooled.mape, 0.30);
  EXPECT_GT(r.pooled.r2, 0.85);
}

TEST(IntegrationTraining, DistributedStepErrorsInPaperBand) {
  SimTrainingBackend sim(a100_80gb(), nvlink_hdr200_fabric());
  TrainingSweep sweep = TrainingSweep::paper_distributed(benchmark_models());
  sweep.repetitions = 1;
  const auto samples = run_training_campaign(sim, sweep);
  const LooResult r = evaluate_loo("convmeter", samples);
  // Paper: distributed MAPE 0.15, R^2 0.78 with higher comm variance.
  EXPECT_LT(r.pooled.mape, 0.30);
  EXPECT_GT(r.pooled.r2, 0.7);
}

TEST(IntegrationScalability, AlexNetTurnsEarlierThanResNet50) {
  SimTrainingBackend sim(a100_80gb(), nvlink_hdr200_fabric());
  TrainingSweep sweep = TrainingSweep::paper_distributed(benchmark_models());
  sweep.repetitions = 1;
  const auto samples = run_training_campaign(sim, sweep);
  const ConvMeter model = ConvMeter::fit_training(samples);
  const ScalabilityAnalyzer analyzer(model, 4);

  const GraphMetrics alex = compute_metrics_b1(models::build("alexnet"), 128);
  const GraphMetrics rn50 = compute_metrics_b1(models::build("resnet50"), 128);
  const int tp_alex = analyzer.turning_point(alex, 64.0, 64, 1.7);
  const int tp_rn50 = analyzer.turning_point(rn50, 64.0, 64, 1.7);
  EXPECT_LT(tp_alex, tp_rn50);
}

TEST(IntegrationScalability, PredictionTracksSimulatedThroughputCurve) {
  SimTrainingBackend sim(a100_80gb(), nvlink_hdr200_fabric());
  TrainingSweep sweep = TrainingSweep::paper_distributed(benchmark_models());
  sweep.repetitions = 1;
  const auto samples = run_training_campaign(sim, sweep);
  const ConvMeter model = ConvMeter::fit_training(samples);
  const ScalabilityAnalyzer analyzer(model, 4);

  const Graph g = models::build("resnet50");
  const GraphMetrics m = compute_metrics_b1(g, 128);
  for (const int nodes : {1, 4, 16}) {
    TrainConfig cfg;
    cfg.num_nodes = nodes;
    cfg.num_devices = 4 * nodes;
    const double simulated =
        64.0 * cfg.num_devices /
        sim.simulator().expected_step(g, Shape::nchw(64, 3, 128, 128), cfg).step;
    const auto points = analyzer.node_sweep(m, 64.0, nodes);
    const double predicted = points.back().throughput;
    EXPECT_GT(predicted, 0.5 * simulated);
    EXPECT_LT(predicted, 2.0 * simulated);
  }
}

TEST(IntegrationBlocks, BlockwisePredictionFitsWell) {
  SimInferenceBackend sim(a100_80gb());
  std::vector<BlockCase> blocks;
  for (const auto& nb : models::paper_blocks()) {
    models::BlockExtraction ex = models::extract_paper_block(nb);
    blocks.push_back(
        {nb.label, std::move(ex.block), std::move(ex.input_shape)});
  }
  const auto samples =
      run_block_campaign(sim, blocks, {1, 8, 32, 128, 512}, 2, 99);
  const LooResult r = evaluate_loo("convmeter-fwd-only", samples);
  // Paper Fig. 4: R^2 = 0.997 over blocks; require a strong fit.
  EXPECT_GT(r.pooled.r2, 0.9);
}

TEST(IntegrationBaseline, ConvMeterBeatsDippmLikeOnHeldOutModel) {
  // Fig. 6 protocol: image 128, varied batch; hold out one model.
  SimInferenceBackend sim(a100_80gb());
  InferenceSweep sweep;
  sweep.models = benchmark_models();
  sweep.image_sizes = {128};
  sweep.batch_sizes = {16, 64, 256, 1024, 2000};
  sweep.repetitions = 2;
  const auto samples = run_inference_campaign(sim, sweep);

  const std::string held_out = "resnet50";
  std::vector<RuntimeSample> train;
  std::vector<RuntimeSample> test;
  for (const auto& s : samples) {
    (s.model == held_out ? test : train).push_back(s);
  }
  const ConvMeter ours = ConvMeter::fit_inference(train);
  MlpConfig cfg;
  cfg.epochs = 120;
  const DippmLikePredictor theirs = DippmLikePredictor::fit(train, cfg);

  std::vector<double> ours_pred;
  std::vector<double> theirs_pred;
  std::vector<double> measured;
  for (const auto& s : test) {
    ours_pred.push_back(ours.predict_inference(QueryPoint::from_sample(s)));
    theirs_pred.push_back(theirs.predict(s));
    measured.push_back(s.t_infer);
  }
  const double ours_mape = compute_errors(ours_pred, measured).mape;
  const double theirs_mape = compute_errors(theirs_pred, measured).mape;
  EXPECT_LT(ours_mape, theirs_mape);
}

TEST(IntegrationExecutor, RealCpuTimesCorrelateWithMetrics) {
  // The real executor's measured times should rank models consistently
  // with their FLOP counts — the premise behind the whole approach.
  Executor exec(0);
  const Shape in = Shape::nchw(1, 3, 64, 64);
  const double t_small =
      exec.run_random(models::build("squeezenet1_1"), in).total_seconds;
  const double t_big =
      exec.run_random(models::build("resnet50"), in).total_seconds;
  EXPECT_GT(t_big, t_small);
}

}  // namespace
}  // namespace convmeter
