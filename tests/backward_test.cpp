// Gradient checks: every backward kernel is validated against central
// finite differences of its forward counterpart.
#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "common/error.hpp"
#include "exec/backward.hpp"
#include "exec/kernels.hpp"
#include "graph/shape_inference.hpp"

namespace convmeter {
namespace {

constexpr float kEps = 1e-3f;
constexpr float kTol = 2e-2f;  // float32 central differences are noisy

/// Scalar loss used by the checks: sum of all output elements weighted by
/// a fixed pseudo-random pattern (so every element matters differently).
double weighted_sum(const Tensor& t) {
  double acc = 0.0;
  const auto d = t.data();
  for (std::size_t i = 0; i < d.size(); ++i) {
    acc += d[i] * (0.3 + 0.7 * static_cast<double>((i * 2654435761u) % 97) / 97.0);
  }
  return acc;
}

/// dL/dy for the weighted-sum loss.
Tensor weighted_ones(const Shape& shape) {
  Tensor t(shape);
  auto d = t.data();
  for (std::size_t i = 0; i < d.size(); ++i) {
    d[i] = static_cast<float>(
        0.3 + 0.7 * static_cast<double>((i * 2654435761u) % 97) / 97.0);
  }
  return t;
}

/// Central-difference gradient of `loss(x)` w.r.t. x, compared element by
/// element with `analytic`.
void check_against_fd(Tensor& x, const std::function<double()>& loss,
                      const Tensor& analytic) {
  ASSERT_EQ(x.shape(), analytic.shape());
  auto d = x.data();
  for (std::size_t i = 0; i < d.size(); ++i) {
    const float saved = d[i];
    d[i] = saved + kEps;
    const double up = loss();
    d[i] = saved - kEps;
    const double down = loss();
    d[i] = saved;
    const double fd = (up - down) / (2.0 * kEps);
    ASSERT_NEAR(analytic.data()[i], fd,
                kTol * (1.0 + std::fabs(fd)))
        << "element " << i;
  }
}

TEST(ConvBackwardTest, GradInputMatchesFiniteDifferences) {
  const Conv2dAttrs a = Conv2dAttrs::square(2, 3, 3, 1, 1);
  Tensor x(Shape::nchw(1, 2, 4, 4));
  Tensor w(Shape({3, 2, 3, 3}));
  x.fill_random(1);
  w.fill_random(2);
  ThreadPool pool(1);

  const Tensor go = weighted_ones(conv2d_output_shape(a, x.shape()));
  const ConvGradients g = conv2d_backward(pool, x, w, go, a);
  check_against_fd(
      x, [&] { return weighted_sum(conv2d_direct(x, w, Tensor(), a)); },
      g.grad_input);
}

TEST(ConvBackwardTest, GradWeightMatchesFiniteDifferences) {
  const Conv2dAttrs a = Conv2dAttrs::square(2, 2, 3, 2, 1);
  Tensor x(Shape::nchw(2, 2, 5, 5));
  Tensor w(Shape({2, 2, 3, 3}));
  x.fill_random(3);
  w.fill_random(4);
  ThreadPool pool(1);

  const Tensor go = weighted_ones(conv2d_output_shape(a, x.shape()));
  const ConvGradients g = conv2d_backward(pool, x, w, go, a);
  check_against_fd(
      w, [&] { return weighted_sum(conv2d_direct(x, w, Tensor(), a)); },
      g.grad_weight);
}

TEST(ConvBackwardTest, GradBiasMatchesFiniteDifferences) {
  const Conv2dAttrs a = Conv2dAttrs::square(1, 2, 3, 1, 1, 1, true);
  Tensor x(Shape::nchw(1, 1, 4, 4));
  Tensor w(Shape({2, 1, 3, 3}));
  Tensor b(Shape{2});
  x.fill_random(5);
  w.fill_random(6);
  b.fill_random(7);
  ThreadPool pool(1);

  const Tensor go = weighted_ones(conv2d_output_shape(a, x.shape()));
  const ConvGradients g = conv2d_backward(pool, x, w, go, a);
  check_against_fd(
      b, [&] { return weighted_sum(conv2d_direct(x, w, b, a)); }, g.grad_bias);
}

TEST(ConvBackwardTest, GroupedConvGradients) {
  const Conv2dAttrs a = Conv2dAttrs::square(4, 4, 3, 1, 1, 4);  // depthwise
  Tensor x(Shape::nchw(1, 4, 4, 4));
  Tensor w(Shape({4, 1, 3, 3}));
  x.fill_random(8);
  w.fill_random(9);
  ThreadPool pool(2);

  const Tensor go = weighted_ones(conv2d_output_shape(a, x.shape()));
  const ConvGradients g = conv2d_backward(pool, x, w, go, a);
  check_against_fd(
      x, [&] { return weighted_sum(conv2d_direct(x, w, Tensor(), a)); },
      g.grad_input);
  check_against_fd(
      w, [&] { return weighted_sum(conv2d_direct(x, w, Tensor(), a)); },
      g.grad_weight);
}

// ---- GEMM-based conv backward vs direct reference ---------------------------
//
// The production conv2d_backward computes both gradients as packed GEMMs over
// im2col tiles; conv2d_backward_direct is the septuple-loop oracle. The sweep
// deliberately hits every awkward geometry: dims that are not multiples of
// the GEMM tiles, groups, dilation, stride, asymmetric padding, and both a
// single image and a batch large enough to exercise the parallel partial-sum
// reduction.

struct ConvBwdCase {
  std::string name;
  std::int64_t batch, in_ch, out_ch, image, kernel, stride, pad_h, pad_w,
      groups, dilation;
  bool bias;
};

class ConvBackwardAgreement : public ::testing::TestWithParam<ConvBwdCase> {};

TEST_P(ConvBackwardAgreement, GemmPathMatchesDirect) {
  const ConvBwdCase& c = GetParam();
  Conv2dAttrs a = Conv2dAttrs::square(c.in_ch, c.out_ch, c.kernel, c.stride,
                                      0, c.groups, c.bias);
  a.pad_h = c.pad_h;
  a.pad_w = c.pad_w;
  a.dilation_h = a.dilation_w = c.dilation;

  Tensor x(Shape::nchw(c.batch, c.in_ch, c.image, c.image));
  Tensor w(Shape({c.out_ch, c.in_ch / c.groups, c.kernel, c.kernel}));
  x.fill_random(100);
  w.fill_random(101);
  Tensor go(conv2d_output_shape(a, x.shape()));
  go.fill_random(102);

  ThreadPool pool(3);
  const ConvGradients fast = conv2d_backward(pool, x, w, go, a);
  const ConvGradients ref = conv2d_backward_direct(pool, x, w, go, a);

  const auto expect_close = [](const Tensor& got, const Tensor& want,
                               const char* what) {
    ASSERT_EQ(got.shape(), want.shape()) << what;
    const auto g = got.data();
    const auto r = want.data();
    for (std::size_t i = 0; i < g.size(); ++i) {
      ASSERT_NEAR(g[i], r[i], 1e-4f * (1.0f + std::fabs(r[i])))
          << what << " element " << i;
    }
  };
  expect_close(fast.grad_input, ref.grad_input, "grad_input");
  expect_close(fast.grad_weight, ref.grad_weight, "grad_weight");
  if (c.bias) expect_close(fast.grad_bias, ref.grad_bias, "grad_bias");
}

INSTANTIATE_TEST_SUITE_P(
    AdversarialSweep, ConvBackwardAgreement,
    ::testing::Values(
        ConvBwdCase{"plain3x3", 2, 3, 5, 8, 3, 1, 1, 1, 1, 1, true},
        ConvBwdCase{"batch1", 1, 4, 6, 9, 3, 1, 1, 1, 1, 1, false},
        ConvBwdCase{"batch17", 17, 2, 3, 6, 3, 1, 1, 1, 1, 1, true},
        ConvBwdCase{"groups3", 1, 6, 9, 8, 3, 1, 1, 1, 3, 1, false},
        ConvBwdCase{"depthwise", 4, 5, 5, 7, 3, 1, 1, 1, 5, 1, true},
        ConvBwdCase{"dilation2", 2, 3, 4, 11, 3, 1, 2, 2, 1, 2, false},
        ConvBwdCase{"stride3", 2, 3, 4, 11, 3, 3, 1, 1, 1, 1, false},
        ConvBwdCase{"asym_pad", 2, 3, 4, 8, 3, 1, 2, 0, 1, 1, true},
        ConvBwdCase{"offtile_dims", 3, 7, 13, 10, 3, 2, 1, 1, 1, 1, false},
        ConvBwdCase{"pointwise", 2, 8, 11, 6, 1, 1, 0, 0, 1, 1, true}),
    [](const auto& info) { return info.param.name; });

TEST(ConvBackwardTest, BitwiseStableGradBiasAcrossThreadCounts) {
  const Conv2dAttrs a = Conv2dAttrs::square(3, 6, 3, 1, 1, 1, true);
  Tensor x(Shape::nchw(5, 3, 9, 9));
  Tensor w(Shape({6, 3, 3, 3}));
  x.fill_random(110);
  w.fill_random(111);
  Tensor go(conv2d_output_shape(a, x.shape()));
  go.fill_random(112);
  ThreadPool pool1(1);
  ThreadPool pool4(4);
  const ConvGradients g1 = conv2d_backward(pool1, x, w, go, a);
  const ConvGradients g4 = conv2d_backward(pool4, x, w, go, a);
  EXPECT_EQ(g1.grad_bias.max_abs_diff(g4.grad_bias), 0.0f);
  EXPECT_EQ(g1.grad_input.max_abs_diff(g4.grad_input), 0.0f);
  // grad_weight sums batch contributions in slot order; allow rounding-level
  // differences from the different grouping, nothing more.
  EXPECT_LT(g1.grad_weight.max_abs_diff(g4.grad_weight), 1e-5f);
}

TEST(LinearBackwardTest, AllGradientsMatchFiniteDifferences) {
  const LinearAttrs a{5, 3, true};
  Tensor x(Shape{2, 5});
  Tensor w(Shape{3, 5});
  Tensor b(Shape{3});
  x.fill_random(10);
  w.fill_random(11);
  b.fill_random(12);
  ThreadPool pool(1);

  const Tensor go = weighted_ones(Shape{2, 3});
  const LinearGradients g = linear_backward(pool, x, w, go, a);
  const auto loss = [&] { return weighted_sum(linear(pool, x, w, b, a)); };
  check_against_fd(x, loss, g.grad_input);
  check_against_fd(w, loss, g.grad_weight);
  check_against_fd(b, loss, g.grad_bias);
}

class ActivationBackwardTest : public ::testing::TestWithParam<ActKind> {};

TEST_P(ActivationBackwardTest, MatchesFiniteDifferences) {
  Tensor x(Shape{24});
  x.fill_random(13);
  // Shift away from the non-differentiable knots of the piecewise
  // activations.
  for (float& v : x.data()) v = v * 2.0f + 0.11f;

  ThreadPool pool(1);
  const Tensor go = weighted_ones(x.shape());
  const Tensor g = activation_backward(x, go, GetParam());
  check_against_fd(
      x, [&] { return weighted_sum(activation(pool, x, GetParam())); }, g);
}

INSTANTIATE_TEST_SUITE_P(
    AllKinds, ActivationBackwardTest,
    ::testing::Values(ActKind::kReLU, ActKind::kReLU6, ActKind::kSiLU,
                      ActKind::kSigmoid, ActKind::kHardSwish,
                      ActKind::kHardSigmoid, ActKind::kTanh),
    [](const auto& info) { return act_kind_name(info.param); });

TEST(PoolBackwardTest, MaxPoolRoutesToArgmax) {
  const Pool2dAttrs a = Pool2dAttrs::square(2, 2);
  Tensor x(Shape::nchw(1, 1, 4, 4));
  x.fill_random(14);
  const Tensor go = weighted_ones(pool2d_output_shape(a, x.shape()));
  const Tensor g = max_pool2d_backward(x, go, a);
  ThreadPool pool(1);
  check_against_fd(x, [&] { return weighted_sum(max_pool2d(pool, x, a)); }, g);
}

TEST(PoolBackwardTest, AvgPoolSpreadsUniformly) {
  const Pool2dAttrs a = Pool2dAttrs::square(2, 2);
  Tensor x(Shape::nchw(1, 2, 4, 4));
  x.fill_random(15);
  const Tensor go = weighted_ones(pool2d_output_shape(a, x.shape()));
  const Tensor g = avg_pool2d_backward(x, go, a);
  ThreadPool pool(1);
  check_against_fd(x, [&] { return weighted_sum(avg_pool2d(pool, x, a)); }, g);
}

TEST(PoolBackwardTest, AdaptiveAvgPoolGradient) {
  Tensor x(Shape::nchw(1, 2, 5, 5));
  x.fill_random(16);
  const Tensor go = weighted_ones(Shape::nchw(1, 2, 2, 2));
  const Tensor g = adaptive_avg_pool2d_backward(x, go);
  ThreadPool pool(1);
  check_against_fd(
      x, [&] { return weighted_sum(adaptive_avg_pool2d(pool, x, 2, 2)); }, g);
}

TEST(BatchNormBackwardTest, AffineGradientsMatchFiniteDifferences) {
  Tensor x(Shape::nchw(2, 3, 3, 3));
  Tensor gamma(Shape{3});
  Tensor beta(Shape{3});
  Tensor mean(Shape{3}, 0.2f);
  Tensor var(Shape{3}, 1.5f);
  x.fill_random(17);
  gamma.fill_random(18);
  beta.fill_random(19);

  const Tensor go = weighted_ones(x.shape());
  const BatchNormGradients g =
      batch_norm2d_backward(x, gamma, mean, var, go);
  ThreadPool pool(1);
  const auto loss = [&] {
    return weighted_sum(batch_norm2d(pool, x, gamma, beta, mean, var));
  };
  check_against_fd(x, loss, g.grad_input);
  check_against_fd(gamma, loss, g.grad_gamma);
  check_against_fd(beta, loss, g.grad_beta);
}

TEST(LinearBackwardTest, Rank3InputFoldsTokensIntoRows) {
  const LinearAttrs a{4, 3, true};
  Tensor x(Shape{2, 3, 4});
  Tensor w(Shape{3, 4});
  Tensor b(Shape{3});
  x.fill_random(40);
  w.fill_random(41);
  b.fill_random(42);
  ThreadPool pool(1);

  const Tensor go = weighted_ones(Shape{2, 3, 3});
  const LinearGradients g = linear_backward(pool, x, w, go, a);
  const auto loss = [&] { return weighted_sum(linear(pool, x, w, b, a)); };
  check_against_fd(x, loss, g.grad_input);
  check_against_fd(w, loss, g.grad_weight);
  check_against_fd(b, loss, g.grad_bias);
}

TEST(LayerNormBackwardTest, AllGradientsMatchFiniteDifferences) {
  const LayerNormAttrs a{6};
  Tensor x(Shape{2, 4, 6});
  Tensor gamma(Shape{6});
  Tensor beta(Shape{6});
  x.fill_random(43);
  gamma.fill_random(44);
  beta.fill_random(45);
  // Keep gamma away from zero so relative FD tolerances stay meaningful.
  for (float& v : gamma.data()) v += (v >= 0.0f ? 0.5f : -0.5f);
  ThreadPool pool(1);

  const Tensor go = weighted_ones(x.shape());
  const LayerNormGradients g = layer_norm_backward(pool, x, gamma, go, a);
  const auto loss = [&] {
    return weighted_sum(layer_norm(pool, x, gamma, beta, a));
  };
  check_against_fd(x, loss, g.grad_input);
  check_against_fd(gamma, loss, g.grad_gamma);
  check_against_fd(beta, loss, g.grad_beta);
}

TEST(LayerNormBackwardTest, BitwiseStableAcrossThreadCounts) {
  const LayerNormAttrs a{8};
  Tensor x(Shape{4, 30, 8});
  Tensor gamma(Shape{8});
  x.fill_random(46);
  gamma.fill_random(47);
  const Tensor go = weighted_ones(x.shape());
  ThreadPool pool1(1);
  ThreadPool pool4(4);
  const LayerNormGradients g1 = layer_norm_backward(pool1, x, gamma, go, a);
  const LayerNormGradients g4 = layer_norm_backward(pool4, x, gamma, go, a);
  EXPECT_EQ(g1.grad_input.max_abs_diff(g4.grad_input), 0.0f);
  EXPECT_EQ(g1.grad_gamma.max_abs_diff(g4.grad_gamma), 0.0f);
  EXPECT_EQ(g1.grad_beta.max_abs_diff(g4.grad_beta), 0.0f);
}

TEST(SelfAttentionBackwardTest, AllGradientsMatchFiniteDifferences) {
  const SelfAttentionAttrs a{4, 2};
  Tensor x(Shape{2, 3, 4});
  Tensor wi(Shape{12, 4});
  Tensor bi(Shape{12});
  Tensor wo(Shape{4, 4});
  Tensor bo(Shape{4});
  x.fill_random(50);
  wi.fill_random(51);
  bi.fill_random(52);
  wo.fill_random(53);
  bo.fill_random(54);
  ThreadPool pool(1);

  const Tensor go = weighted_ones(x.shape());
  const AttentionGradients g =
      self_attention_backward(pool, x, wi, bi, wo, bo, go, a);
  const auto loss = [&] {
    return weighted_sum(self_attention(pool, x, wi, bi, wo, bo, a));
  };
  check_against_fd(x, loss, g.grad_input);
  check_against_fd(wi, loss, g.grad_in_proj_w);
  check_against_fd(bi, loss, g.grad_in_proj_b);
  check_against_fd(wo, loss, g.grad_out_proj_w);
  check_against_fd(bo, loss, g.grad_out_proj_b);
}

TEST(SelfAttentionBackwardTest, BitwiseStableAcrossThreadCounts) {
  const SelfAttentionAttrs a{8, 2};
  Tensor x(Shape{2, 9, 8});
  Tensor wi(Shape{24, 8});
  Tensor bi(Shape{24});
  Tensor wo(Shape{8, 8});
  Tensor bo(Shape{8});
  x.fill_random(55);
  wi.fill_random(56);
  bi.fill_random(57);
  wo.fill_random(58);
  bo.fill_random(59);
  const Tensor go = weighted_ones(x.shape());
  ThreadPool pool1(1);
  ThreadPool pool4(4);
  const AttentionGradients g1 =
      self_attention_backward(pool1, x, wi, bi, wo, bo, go, a);
  const AttentionGradients g4 =
      self_attention_backward(pool4, x, wi, bi, wo, bo, go, a);
  EXPECT_EQ(g1.grad_input.max_abs_diff(g4.grad_input), 0.0f);
  EXPECT_EQ(g1.grad_in_proj_w.max_abs_diff(g4.grad_in_proj_w), 0.0f);
  EXPECT_EQ(g1.grad_in_proj_b.max_abs_diff(g4.grad_in_proj_b), 0.0f);
  EXPECT_EQ(g1.grad_out_proj_w.max_abs_diff(g4.grad_out_proj_w), 0.0f);
  EXPECT_EQ(g1.grad_out_proj_b.max_abs_diff(g4.grad_out_proj_b), 0.0f);
}

TEST(ToTokensBackwardTest, MatchesFiniteDifferences) {
  ThreadPool pool(1);
  Tensor cls(Shape{3});
  cls.fill_random(60);
  for (const bool with_cls : {false, true}) {
    SCOPED_TRACE(with_cls ? "with cls" : "no cls");
    const ToTokensAttrs a{with_cls};
    Tensor x(Shape::nchw(2, 3, 2, 2));
    x.fill_random(61);
    const Tensor go = weighted_ones(Shape{2, with_cls ? 5 : 4, 3});
    const Tensor g = to_tokens_backward(x.shape(), go, a);
    check_against_fd(
        x,
        [&] {
          return weighted_sum(
              to_tokens(pool, x, with_cls ? cls : Tensor(), a));
        },
        g);
  }
}

TEST(SelectTokenBackwardTest, MatchesFiniteDifferences) {
  Tensor x(Shape{2, 4, 3});
  x.fill_random(62);
  const Tensor go = weighted_ones(Shape{2, 3});
  const Tensor g = select_token_backward(x.shape(), go, 1);
  check_against_fd(x, [&] { return weighted_sum(select_token(x, 1)); }, g);
}

TEST(TransposeTokensBackwardTest, TransposeOfGradientMatchesFiniteDifferences) {
  // transpose_tokens is a fixed permutation, so its backward is the same
  // kernel applied to the upstream gradient (an involution).
  ThreadPool pool(1);
  Tensor x(Shape{2, 3, 4});
  x.fill_random(63);
  const Tensor go = weighted_ones(Shape{2, 4, 3});
  const Tensor g = transpose_tokens(pool, go);
  check_against_fd(
      x, [&] { return weighted_sum(transpose_tokens(pool, x)); }, g);
}

TEST(FlattenBackwardTest, ReshapesGradient) {
  const Shape in = Shape::nchw(2, 3, 2, 2);
  Tensor go(Shape{2, 12});
  go.fill_random(20);
  const Tensor g = flatten_backward(in, go);
  EXPECT_EQ(g.shape(), in);
  for (std::size_t i = 0; i < 24; ++i) {
    EXPECT_FLOAT_EQ(g.at(i), go.at(i));
  }
}

TEST(BackwardValidationTest, ShapeMismatchesThrow) {
  ThreadPool pool(1);
  const Conv2dAttrs a = Conv2dAttrs::square(2, 3, 3, 1, 1);
  Tensor x(Shape::nchw(1, 2, 4, 4));
  Tensor w(Shape({3, 2, 3, 3}));
  Tensor bad_go(Shape::nchw(1, 3, 9, 9));
  EXPECT_THROW(conv2d_backward(pool, x, w, bad_go, a), InvalidArgument);
  EXPECT_THROW(
      activation_backward(x, Tensor(Shape::nchw(1, 2, 3, 3)), ActKind::kReLU),
      InvalidArgument);
  EXPECT_THROW(flatten_backward(Shape::nchw(1, 2, 2, 2), Tensor(Shape{1, 9})),
               InvalidArgument);
}

}  // namespace
}  // namespace convmeter
