// Tests for the real ring all-reduce and the data-parallel trainer built
// on it: numerical correctness of the collective, replica consistency,
// and gradient-averaging equivalence with single-worker training.
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "exec/collective.hpp"
#include "exec/data_parallel.hpp"

namespace convmeter {
namespace {

std::vector<std::vector<float>> random_buffers(std::size_t ranks,
                                               std::size_t n,
                                               std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<float>> buffers(ranks, std::vector<float>(n));
  for (auto& b : buffers) {
    for (float& v : b) v = static_cast<float>(rng.uniform(-2.0, 2.0));
  }
  return buffers;
}

std::vector<float> expected_sum(const std::vector<std::vector<float>>& bufs) {
  std::vector<float> sum(bufs[0].size(), 0.0f);
  for (const auto& b : bufs) {
    for (std::size_t i = 0; i < sum.size(); ++i) sum[i] += b[i];
  }
  return sum;
}

class RingAllreduceSweep
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {};

TEST_P(RingAllreduceSweep, EveryRankHoldsTheSum) {
  const auto [ranks, n] = GetParam();
  auto buffers = random_buffers(ranks, n, 17 * ranks + n);
  const std::vector<float> want = expected_sum(buffers);

  std::vector<std::span<float>> views;
  for (auto& b : buffers) views.emplace_back(b);
  ring_allreduce_sum(views);

  for (std::size_t r = 0; r < ranks; ++r) {
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_NEAR(buffers[r][i], want[i], 1e-4f)
          << "rank " << r << " element " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RingAllreduceSweep,
    ::testing::Combine(::testing::Values(1u, 2u, 3u, 4u, 7u),
                       // sizes below, equal to, above and far above the
                       // rank count (exercises uneven chunking)
                       ::testing::Values(1u, 5u, 64u, 1000u)));

TEST(RingAllreduceTest, AverageDividesByRankCount) {
  auto buffers = random_buffers(4, 32, 99);
  const std::vector<float> sum = expected_sum(buffers);
  std::vector<std::span<float>> views;
  for (auto& b : buffers) views.emplace_back(b);
  ring_allreduce_average(views);
  for (std::size_t i = 0; i < 32; ++i) {
    EXPECT_NEAR(buffers[0][i], sum[i] / 4.0f, 1e-4f);
  }
}

TEST(RingAllreduceTest, SingleRankIsNoop) {
  std::vector<float> b = {1.0f, 2.0f, 3.0f};
  std::vector<std::span<float>> views = {std::span<float>(b)};
  ring_allreduce_sum(views);
  EXPECT_EQ(b[1], 2.0f);
}

TEST(RingAllreduceTest, EmptyBuffersAreFine) {
  std::vector<float> a;
  std::vector<float> b;
  std::vector<std::span<float>> views = {std::span<float>(a),
                                         std::span<float>(b)};
  EXPECT_NO_THROW(ring_allreduce_sum(views));
}

TEST(RingAllreduceTest, MismatchedLengthsThrow) {
  std::vector<float> a(4);
  std::vector<float> b(5);
  std::vector<std::span<float>> views = {std::span<float>(a),
                                         std::span<float>(b)};
  EXPECT_THROW(ring_allreduce_sum(views), InvalidArgument);
}

// ---- data-parallel trainer ---------------------------------------------------

Graph tiny_net() {
  Graph g("tiny");
  NodeId x = g.input(1);
  x = g.conv2d("conv", x, Conv2dAttrs::square(1, 4, 3, 1, 1));
  x = g.activation("relu", x, ActKind::kReLU);
  x = g.adaptive_avg_pool("pool", x, 2, 2);
  x = g.flatten("flat", x);
  g.linear("fc", x, LinearAttrs{16, 4, true});
  return g;
}

void make_batch(std::int64_t n, Tensor* input, std::vector<int>* labels) {
  *input = Tensor(Shape::nchw(n, 1, 8, 8));
  input->fill_random(123);
  labels->clear();
  Rng rng(321);
  const std::int64_t half = 4;
  for (std::int64_t b = 0; b < n; ++b) {
    const int label = static_cast<int>(rng.uniform_int(0, 3));
    labels->push_back(label);
    const std::int64_t h0 = (label / 2) * half;
    const std::int64_t w0 = (label % 2) * half;
    for (std::int64_t h = h0; h < h0 + half; ++h) {
      for (std::int64_t w = w0; w < w0 + half; ++w) {
        input->at4(b, 0, h, w) += 3.0f;
      }
    }
  }
}

TEST(DataParallelTest, ReplicasStayBitIdentical) {
  DataParallelTrainer dp(tiny_net(), 4);
  Tensor input;
  std::vector<int> labels;
  make_batch(16, &input, &labels);
  for (int s = 0; s < 3; ++s) dp.step(input, labels);

  const Graph& g = dp.replica(0).graph();
  for (const char* node : {"conv", "fc"}) {
    const Tensor& reference = dp.replica(0).parameters(g.find(node))[0];
    for (int w = 1; w < dp.num_workers(); ++w) {
      EXPECT_EQ(
          reference.max_abs_diff(dp.replica(w).parameters(g.find(node))[0]),
          0.0f)
          << node << " diverged on worker " << w;
    }
  }
}

TEST(DataParallelTest, MatchesSingleWorkerTrainingWithSgd) {
  // With SGD, averaging shard gradients is mathematically identical to a
  // single worker processing the whole batch (the loss is a mean).
  TrainerConfig cfg;
  cfg.optimizer = TrainerConfig::Optimizer::kSgd;
  cfg.learning_rate = 0.05;
  cfg.num_threads = 1;

  Tensor input;
  std::vector<int> labels;
  make_batch(8, &input, &labels);

  Trainer solo(tiny_net(), cfg);
  DataParallelTrainer dp(tiny_net(), 4, cfg);
  double solo_loss = 0.0;
  double dp_loss = 0.0;
  for (int s = 0; s < 3; ++s) {
    solo_loss = solo.step(input, labels).loss;
    dp_loss = dp.step(input, labels).loss;
  }
  EXPECT_NEAR(solo_loss, dp_loss, 1e-4);

  const Graph& g = solo.graph();
  const Tensor& a = solo.parameters(g.find("fc"))[0];
  const Tensor& b = dp.replica(0).parameters(g.find("fc"))[0];
  EXPECT_LT(a.max_abs_diff(b), 1e-4f);
}

TEST(DataParallelTest, LossDecreases) {
  TrainerConfig cfg;
  cfg.learning_rate = 5e-3;
  DataParallelTrainer dp(tiny_net(), 2, cfg);
  Tensor input;
  std::vector<int> labels;
  make_batch(16, &input, &labels);
  const double first = dp.step(input, labels).loss;
  double last = first;
  for (int s = 0; s < 25; ++s) last = dp.step(input, labels).loss;
  EXPECT_LT(last, first);
}

TEST(DataParallelTest, PhaseTimesPopulated) {
  DataParallelTrainer dp(tiny_net(), 2);
  Tensor input;
  std::vector<int> labels;
  make_batch(8, &input, &labels);
  const DataParallelStepResult r = dp.step(input, labels);
  EXPECT_GT(r.fwd_seconds, 0.0);
  EXPECT_GT(r.bwd_seconds, 0.0);
  EXPECT_GT(r.comm_seconds, 0.0);
  EXPECT_GT(r.update_seconds, 0.0);
}

TEST(DataParallelTest, RejectsIndivisibleBatch) {
  DataParallelTrainer dp(tiny_net(), 4);
  Tensor input;
  std::vector<int> labels;
  make_batch(6, &input, &labels);
  EXPECT_THROW(dp.step(input, labels), InvalidArgument);
}

TEST(DataParallelTest, RejectsZeroWorkers) {
  EXPECT_THROW(DataParallelTrainer(tiny_net(), 0), InvalidArgument);
}

}  // namespace
}  // namespace convmeter
