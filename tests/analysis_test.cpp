// Analysis-layer tests: the diagnostic sink and its renderers, every
// built-in pass against hand-built defective graphs, the adversarial graph
// corpus under tests/data/lint, a zero-diagnostics sweep over every zoo
// model, pass gating, and the executor pre-flight hook.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "analysis/verifier.hpp"
#include "common/json.hpp"
#include "exec/executor.hpp"
#include "graph/serialize.hpp"
#include "models/zoo.hpp"

namespace convmeter::analysis {
namespace {

/// True when the report contains a diagnostic with the given id.
bool has_id(const VerifyReport& report, const std::string& id) {
  const auto& ds = report.sink.diagnostics();
  return std::any_of(ds.begin(), ds.end(),
                     [&](const Diagnostic& d) { return d.id == id; });
}

VerifyReport verify(const Graph& g, std::int64_t image = 32,
                    bool training = false) {
  VerifyOptions options;
  const std::int64_t channels =
      g.input_channels() > 0 ? g.input_channels() : 3;
  options.input_shape = Shape::nchw(1, channels, image, image);
  options.training = training;
  const Verifier verifier;
  return verifier.verify(g, options);
}

/// A minimal well-formed graph for mutation-based tests.
std::vector<Node> tiny_nodes() {
  Graph g("tiny");
  NodeId x = g.input(3);
  x = g.conv2d("c", x, Conv2dAttrs::square(3, 4, 3, 1, 1));
  x = g.activation("r", x, ActKind::kReLU);
  x = g.adaptive_avg_pool("p", x, 1, 1);
  x = g.flatten("f", x);
  g.linear("fc", x, LinearAttrs{4, 10, true});
  return g.nodes();
}

TEST(DiagnosticsTest, ToStringAndCounts) {
  DiagnosticSink sink;
  sink.report(Severity::kError, "dataflow.cycle", "dataflow", 3, "relu",
              "node participates in a dependency cycle", "break the cycle");
  sink.report(Severity::kWarning, "determinism.grad_reduction", "determinism",
              -1, "", "thread-sensitive reduction");
  sink.report(Severity::kNote, "workspace.peak", "workspace", 1, "c",
              "peak 123 bytes");
  EXPECT_EQ(sink.errors(), 1u);
  EXPECT_EQ(sink.warnings(), 1u);
  EXPECT_EQ(sink.notes(), 1u);
  EXPECT_TRUE(sink.has_findings(Severity::kNote));
  EXPECT_TRUE(sink.has_findings(Severity::kError));

  const std::string line = sink.diagnostics().front().to_string();
  EXPECT_NE(line.find("error[dataflow.cycle]"), std::string::npos);
  EXPECT_NE(line.find("'relu'"), std::string::npos);
  EXPECT_NE(line.find("[hint: break the cycle]"), std::string::npos);

  const std::string text = sink.render_text("g");
  EXPECT_NE(text.find("verifying graph 'g'"), std::string::npos);
  EXPECT_NE(text.find("1 error(s), 1 warning(s), 1 note(s)"),
            std::string::npos);
}

TEST(DiagnosticsTest, JsonRoundTripsThroughParser) {
  DiagnosticSink sink;
  sink.report(Severity::kError, "shapes.contract", "shapes", 2, "conv",
              "channel mismatch");
  const json::Value v = json::parse(sink.render_json("resnet"));
  EXPECT_EQ(v.at("graph").as_string(), "resnet");
  EXPECT_EQ(v.at("errors").as_number(), 1.0);
  const auto& items = v.at("diagnostics").as_array();
  ASSERT_EQ(items.size(), 1u);
  EXPECT_EQ(items[0].at("id").as_string(), "shapes.contract");
  EXPECT_EQ(items[0].at("severity").as_string(), "error");
  EXPECT_EQ(items[0].at("node").as_number(), 2.0);
}

TEST(VerifierTest, CleanGraphHasNoErrorsOrWarnings) {
  const VerifyReport r = verify(Graph::unchecked("tiny", 3, tiny_nodes()));
  EXPECT_TRUE(r.ok());
  EXPECT_TRUE(r.clean());
  EXPECT_EQ(r.passes.size(), 10u);
  for (const PassStat& p : r.passes) EXPECT_FALSE(p.skipped);
}

TEST(VerifierTest, EmptyGraph) {
  const VerifyReport r = verify(Graph::unchecked("empty", 0, {}));
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(has_id(r, "structure.empty_graph"));
}

TEST(VerifierTest, DuplicateNameAndBadArity) {
  auto nodes = tiny_nodes();
  nodes[2].name = "c";       // duplicate of the conv
  nodes[4].inputs = {2, 3};  // flatten with two inputs
  const VerifyReport r = verify(Graph::unchecked("dup", 3, nodes));
  EXPECT_TRUE(has_id(r, "structure.duplicate_name"));
  EXPECT_TRUE(has_id(r, "structure.bad_arity"));
}

TEST(VerifierTest, AttrPayloadMismatch) {
  auto nodes = tiny_nodes();
  nodes[1].attrs = Pool2dAttrs::square(2, 2);  // conv carrying pool attrs
  const VerifyReport r = verify(Graph::unchecked("mismatch", 3, nodes));
  EXPECT_TRUE(has_id(r, "structure.attr_mismatch"));
}

TEST(VerifierTest, DanglingEdgeSkipsShapeDependentPasses) {
  auto nodes = tiny_nodes();
  nodes[1].inputs = {41};
  const VerifyReport r = verify(Graph::unchecked("dangling", 3, nodes));
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(has_id(r, "dataflow.dangling_edge"));
  // Passes that need in-range edges must be recorded as skipped, not run.
  bool shapes_skipped = false;
  for (const PassStat& p : r.passes) {
    if (p.name == "shapes") shapes_skipped = p.skipped;
  }
  EXPECT_TRUE(shapes_skipped);
}

TEST(VerifierTest, CycleIsReported) {
  auto nodes = tiny_nodes();
  nodes[1].inputs = {2};  // conv consumes the activation that consumes it
  const VerifyReport r = verify(Graph::unchecked("cycle", 3, nodes));
  EXPECT_TRUE(has_id(r, "dataflow.cycle"));
  EXPECT_TRUE(has_id(r, "dataflow.use_before_def"));
}

TEST(VerifierTest, DeadOpIsReported) {
  auto nodes = tiny_nodes();
  Node dead;
  dead.name = "dead";
  dead.kind = OpKind::kConv2d;
  dead.attrs = Conv2dAttrs::square(3, 4, 3, 1, 1);
  dead.inputs = {0};
  nodes.insert(nodes.begin() + 1, dead);
  // Re-point the original conv chain past the inserted node.
  for (std::size_t i = 2; i < nodes.size(); ++i) {
    for (NodeId& in : nodes[i].inputs) {
      if (in >= 1) ++in;
    }
  }
  const VerifyReport r = verify(Graph::unchecked("dead", 3, nodes));
  EXPECT_TRUE(has_id(r, "reachability.dead_op"));
}

TEST(VerifierTest, ShapeContractViolation) {
  auto nodes = tiny_nodes();
  nodes[1].attrs = Conv2dAttrs::square(64, 4, 3, 1, 1);  // expects 64 ch
  const VerifyReport r = verify(Graph::unchecked("mismatch", 3, nodes));
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(has_id(r, "shapes.contract"));
}

TEST(VerifierTest, GroupsMustDivideChannels) {
  auto nodes = tiny_nodes();
  auto attrs = Conv2dAttrs::square(3, 4, 3, 1, 1);
  attrs.groups = 2;  // does not divide in_channels=3
  nodes[1].attrs = attrs;
  const VerifyReport r = verify(Graph::unchecked("groups", 3, nodes));
  EXPECT_TRUE(has_id(r, "attrs.groups"));
}

TEST(VerifierTest, IllegalFusionOrdering) {
  // The activation precedes the conv it would fuse into: the executor
  // would move the conv's (not yet produced) output tensor.
  std::vector<Node> nodes(4);
  nodes[0].name = "input";
  nodes[0].kind = OpKind::kInput;
  nodes[0].attrs = InputAttrs{};
  nodes[1].name = "relu";
  nodes[1].kind = OpKind::kActivation;
  nodes[1].attrs = ActivationAttrs{ActKind::kReLU};
  nodes[1].inputs = {2};
  nodes[2].name = "conv";
  nodes[2].kind = OpKind::kConv2d;
  nodes[2].attrs = Conv2dAttrs::square(3, 4, 3, 1, 1);
  nodes[2].inputs = {0};
  nodes[3].name = "flat";
  nodes[3].kind = OpKind::kFlatten;
  nodes[3].attrs = FlattenAttrs{};
  nodes[3].inputs = {1};
  const VerifyReport r = verify(Graph::unchecked("fusion", 3, nodes));
  EXPECT_TRUE(has_id(r, "fusion.use_after_move"));
}

TEST(VerifierTest, WorkspaceOverBudget) {
  auto nodes = tiny_nodes();
  nodes[1].attrs = Conv2dAttrs::square(3, 4, 3, 1, 1);
  VerifyOptions options;
  options.input_shape = Shape::nchw(1, 3, 32, 32);
  options.workspace_budget_bytes = 1024;  // absurdly small budget
  const Verifier verifier;
  const VerifyReport r =
      verifier.verify(Graph::unchecked("ws", 3, nodes), options);
  EXPECT_TRUE(has_id(r, "workspace.over_budget"));
}

TEST(VerifierTest, TrainingAuditFlagsGradReductionAndDropout) {
  Graph g("train");
  NodeId x = g.input(3);
  x = g.conv2d("c", x, Conv2dAttrs::square(3, 4, 3, 1, 1));
  x = g.flatten("f", x);
  x = g.dropout("d", x, 0.5);
  g.linear("fc", x, LinearAttrs{4 * 32 * 32, 10, true});
  const VerifyReport r = verify(g, 32, /*training=*/true);
  EXPECT_TRUE(r.ok());  // warnings, not errors
  EXPECT_FALSE(r.clean());
  EXPECT_TRUE(has_id(r, "determinism.grad_reduction"));
  EXPECT_TRUE(has_id(r, "determinism.stochastic"));
  // The same graph is silent on both counts under inference verification.
  const VerifyReport fwd = verify(g, 32, /*training=*/false);
  EXPECT_TRUE(fwd.clean());
}

TEST(VerifierTest, CustomPassParticipates) {
  class AlwaysWarn : public Pass {
   public:
    std::string name() const override { return "custom"; }
    bool needs_valid_edges() const override { return false; }
    void run(const VerifyContext&, DiagnosticSink& sink) const override {
      sink.report(Severity::kWarning, "custom.finding", "custom", -1, "",
                  "injected");
    }
  };
  Verifier verifier;
  verifier.add_pass(std::make_unique<AlwaysWarn>());
  EXPECT_EQ(verifier.pass_count(), 11u);
  VerifyOptions options;
  options.input_shape = Shape::nchw(1, 3, 32, 32);
  const VerifyReport r =
      verifier.verify(Graph::unchecked("tiny", 3, tiny_nodes()), options);
  EXPECT_TRUE(has_id(r, "custom.finding"));
  EXPECT_FALSE(r.clean());
}

struct CorpusCase {
  const char* file;
  const char* expected_id;
  bool training = false;
  std::uint64_t memory_budget = 0;
  // Error-severity cases must fail verification; note-severity cases (the
  // memory planner's advisory diagnostics) must keep ok() while still
  // reporting their id.
  bool is_error = true;
};

class CorpusTest : public ::testing::TestWithParam<CorpusCase> {};

TEST_P(CorpusTest, ReportsExpectedDiagnostic) {
  const CorpusCase c = GetParam();
  const Graph g = load_graph_unchecked(std::string(CM_LINT_CORPUS_DIR) + "/" +
                                       c.file);
  VerifyOptions options;
  const std::int64_t channels =
      g.input_channels() > 0 ? g.input_channels() : 3;
  options.input_shape = Shape::nchw(1, channels, 224, 224);
  options.training = c.training;
  options.memory_budget_bytes = c.memory_budget;
  const Verifier verifier;
  const VerifyReport r = verifier.verify(g, options);
  if (c.is_error) {
    EXPECT_FALSE(r.ok()) << r.render_text();
  } else {
    EXPECT_TRUE(r.ok()) << r.render_text();
  }
  EXPECT_TRUE(has_id(r, c.expected_id)) << r.render_text();
}

INSTANTIATE_TEST_SUITE_P(
    Lint, CorpusTest,
    ::testing::Values(CorpusCase{"cycle.txt", "dataflow.cycle"},
                      CorpusCase{"dangling.txt", "dataflow.dangling_edge"},
                      CorpusCase{"shape_mismatch.txt", "shapes.contract"},
                      CorpusCase{"illegal_fusion.txt",
                                 "fusion.use_after_move"},
                      CorpusCase{"workspace_bound.txt",
                                 "workspace.over_budget"},
                      CorpusCase{"duplicate_name.txt",
                                 "structure.duplicate_name"},
                      CorpusCase{"dead_op.txt", "reachability.dead_op"},
                      CorpusCase{"bad_attrs.txt", "attrs.groups"},
                      // A 1 MiB budget a 224x224 conv net cannot fit in.
                      CorpusCase{"over_budget.txt", "memplan.over_budget",
                                 false, 1ull << 20},
                      CorpusCase{"reuse.txt", "memplan.reuse", false, 0,
                                 false},
                      CorpusCase{"train_pinned.txt", "liveness.pinned", true,
                                 0, false},
                      // Warning-severity: training lint flags the dropout
                      // as a stochastic op but stays ok().
                      CorpusCase{"determinism.txt", "determinism.stochastic",
                                 true, 0, false}),
    [](const ::testing::TestParamInfo<CorpusCase>& info) {
      std::string name = info.param.file;
      return name.substr(0, name.find('.'));
    });

TEST(CorpusTest, CleanFilePassesStrictly) {
  const Graph g = load_graph_unchecked(std::string(CM_LINT_CORPUS_DIR) +
                                       "/clean.txt");
  const VerifyReport r = verify(g, 224);
  EXPECT_TRUE(r.ok()) << r.render_text();
  EXPECT_TRUE(r.clean()) << r.render_text();
}

TEST(ZooSweepTest, EveryBuiltInModelVerifiesClean) {
  const Verifier verifier;
  for (const std::string& name : models::available_models()) {
    const Graph g = models::build(name);
    VerifyOptions options;
    const std::int64_t image = models::default_image_size(name);
    options.input_shape =
        Shape::nchw(1, g.input_channels(), image, image);
    const VerifyReport r = verifier.verify(g, options);
    EXPECT_TRUE(r.ok()) << name << ":\n" << r.render_text();
    EXPECT_TRUE(r.clean()) << name << ":\n" << r.render_text();
  }
}

TEST(PreflightTest, HookRejectsDefectiveGraphBeforeExecution) {
  install_executor_preflight();
  auto nodes = tiny_nodes();
  nodes[1].inputs = {41};  // dangling edge
  const Graph bad = Graph::unchecked("bad", 3, nodes);
  Executor exec(1);
  EXPECT_THROW(exec.run_random(bad, Shape::nchw(1, 3, 32, 32)),
               InvalidArgument);
  // A healthy graph still runs with the pre-flight installed.
  const Graph good = Graph::unchecked("good", 3, tiny_nodes());
  EXPECT_NO_THROW(exec.run_random(good, Shape::nchw(1, 3, 8, 8)));
  remove_executor_preflight();
  EXPECT_EQ(exec_preflight(), nullptr);
}

}  // namespace
}  // namespace convmeter::analysis
