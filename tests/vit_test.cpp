// Transformer-extension tests: new operators' shape inference, ViT metric
// goldens, serialization, and end-to-end execution through the real CPU
// backend.
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "exec/executor.hpp"
#include "graph/serialize.hpp"
#include "graph/shape_inference.hpp"
#include "metrics/metrics.hpp"
#include "models/zoo.hpp"

namespace convmeter {
namespace {

Graph tiny_vit() {
  Graph g("tiny-vit");
  NodeId x = g.input(3);
  x = g.conv2d("patch", x, Conv2dAttrs::square(3, 8, 4, 4, 0, 1, true));
  x = g.to_tokens("tok", x, true);
  NodeId y = g.layer_norm("ln1", x, 8);
  y = g.self_attention("attn", y, 8, 2);
  x = g.add("res", x, y);
  x = g.layer_norm("ln2", x, 8);
  x = g.select_token("cls", x, 0);
  g.linear("head", x, LinearAttrs{8, 10, true});
  return g;
}

TEST(TransformerShapeTest, ToTokensProducesSequence) {
  const Graph g = tiny_vit();
  const ShapeMap shapes = infer_shapes(g, Shape::nchw(2, 3, 16, 16));
  // 16/4 = 4x4 = 16 patches + cls token.
  EXPECT_EQ(shapes[static_cast<std::size_t>(g.find("tok"))],
            Shape({2, 17, 8}));
  EXPECT_EQ(shapes[static_cast<std::size_t>(g.find("attn"))],
            Shape({2, 17, 8}));
  EXPECT_EQ(shapes[static_cast<std::size_t>(g.find("cls"))], Shape({2, 8}));
  EXPECT_EQ(shapes.back(), Shape({2, 10}));
}

TEST(TransformerShapeTest, NoClsTokenVariant) {
  Graph g("no-cls");
  NodeId x = g.input(3);
  x = g.conv2d("patch", x, Conv2dAttrs::square(3, 8, 4, 4));
  g.to_tokens("tok", x, false);
  const ShapeMap shapes = infer_shapes(g, Shape::nchw(1, 3, 16, 16));
  EXPECT_EQ(shapes.back(), Shape({1, 16, 8}));
}

TEST(TransformerShapeTest, LayerNormDimChecked) {
  Graph g("ln-bad");
  NodeId x = g.input(3);
  x = g.conv2d("patch", x, Conv2dAttrs::square(3, 8, 4, 4));
  x = g.to_tokens("tok", x, true);
  g.layer_norm("ln", x, 16);  // dim is 8, not 16
  EXPECT_THROW(infer_shapes(g, Shape::nchw(1, 3, 16, 16)), InvalidArgument);
}

TEST(TransformerShapeTest, AttentionHeadsMustDivideDim) {
  Graph g("attn-bad");
  NodeId x = g.input(3);
  x = g.conv2d("patch", x, Conv2dAttrs::square(3, 8, 4, 4));
  x = g.to_tokens("tok", x, true);
  EXPECT_THROW(g.self_attention("attn", x, 8, 3), InvalidArgument);
}

TEST(TransformerShapeTest, Rank3LinearAppliesPerToken) {
  Graph g("mlp");
  NodeId x = g.input(3);
  x = g.conv2d("patch", x, Conv2dAttrs::square(3, 8, 4, 4));
  x = g.to_tokens("tok", x, true);
  g.linear("fc", x, LinearAttrs{8, 32, true});
  const ShapeMap shapes = infer_shapes(g, Shape::nchw(2, 3, 16, 16));
  EXPECT_EQ(shapes.back(), Shape({2, 17, 32}));
}

TEST(TransformerMetricsTest, AttentionParameterCount) {
  // in_proj: 3*8*8 + 3*8 = 216; out_proj: 8*8 + 8 = 72.
  EXPECT_EQ((SelfAttentionAttrs{8, 2}.parameter_count()), 288);
}

TEST(TransformerMetricsTest, Rank3LinearFlopsCountTokens) {
  Graph g("mlp");
  NodeId x = g.input(3);
  x = g.conv2d("patch", x, Conv2dAttrs::square(3, 8, 4, 4));
  x = g.to_tokens("tok", x, false);  // 16 tokens
  g.linear("fc", x, LinearAttrs{8, 32, false});
  const auto work = per_layer_work(g, Shape::nchw(2, 3, 16, 16));
  // rows = 2*16 = 32, flops = 32 * 2*8*32 = 16384.
  EXPECT_DOUBLE_EQ(work.back().flops, 16384.0);
}

struct VitGolden {
  const char* name;
  double params_m;  ///< millions (pos-embed excluded, hence tolerance)
  double gflops;    ///< 2 x published GMACs @224
};

class VitGoldenTest : public ::testing::TestWithParam<VitGolden> {};

TEST_P(VitGoldenTest, MatchesPublishedScale) {
  const Graph g = models::build(GetParam().name);
  EXPECT_NEAR(g.parameter_count() / 1e6, GetParam().params_m,
              0.02 * GetParam().params_m);
  const GraphMetrics m = compute_metrics_b1(g, 224);
  EXPECT_NEAR(m.flops / 1e9, GetParam().gflops, 0.05 * GetParam().gflops);
}

INSTANTIATE_TEST_SUITE_P(
    Golden, VitGoldenTest,
    ::testing::Values(VitGolden{"vit_b_16", 86.4, 35.2},
                      VitGolden{"vit_l_16", 304.1, 123.3},
                      VitGolden{"vit_s_16", 22.0, 9.2}),
    [](const auto& info) { return std::string(info.param.name); });

TEST(TransformerMetricsTest, ConvIoNearZeroButComputeIoLarge) {
  const GraphMetrics m = compute_metrics_b1(models::build("vit_b_16"), 224);
  // Only the patch embed is a conv: its I/O is a sliver of the compute I/O.
  EXPECT_LT(m.conv_inputs + m.conv_outputs,
            0.05 * (m.compute_inputs + m.compute_outputs));
}

TEST(TransformerMetricsTest, ComputeIoCoversConvNetsToo) {
  const GraphMetrics m = compute_metrics_b1(models::build("resnet18"), 224);
  // For a ConvNet the generalized I/O must at least include the conv I/O.
  EXPECT_GE(m.compute_inputs, m.conv_inputs);
  EXPECT_GE(m.compute_outputs, m.conv_outputs);
}

TEST(TransformerSerializeTest, VitRoundTrips) {
  const Graph g = models::build("vit_ti_16");
  const Graph back = graph_from_text(graph_to_text(g));
  EXPECT_EQ(back.size(), g.size());
  EXPECT_EQ(back.parameter_count(), g.parameter_count());
  EXPECT_EQ(graph_to_text(back), graph_to_text(g));
}

TEST(TransformerExecutorTest, VitGraphExecutesEndToEnd) {
  Executor exec(2);
  const ExecutionResult r =
      exec.run_random(tiny_vit(), Shape::nchw(2, 3, 16, 16));
  EXPECT_EQ(r.output.shape(), Shape({2, 10}));
  for (const float v : r.output.data()) EXPECT_TRUE(std::isfinite(v));
  // Every layer must have been timed, attention and norms included.
  EXPECT_EQ(r.layers.size(), tiny_vit().size());
}

TEST(TransformerExecutorTest, ExecutionIsThreadCountInvariant) {
  const Graph g = tiny_vit();
  Executor serial(1);
  Executor threaded(4);
  const Tensor out1 = serial.run_random(g, Shape::nchw(2, 3, 16, 16)).output;
  const Tensor out4 =
      threaded.run_random(g, Shape::nchw(2, 3, 16, 16)).output;
  ASSERT_EQ(out1.shape(), out4.shape());
  for (std::size_t i = 0; i < out1.data().size(); ++i) {
    EXPECT_EQ(out1.data()[i], out4.data()[i]) << "element " << i;
  }
}

TEST(TransformerMetricsTest, VitBatchLinearity) {
  const Graph g = models::build("vit_ti_16");
  const GraphMetrics m1 = compute_metrics(g, Shape::nchw(1, 3, 224, 224));
  const GraphMetrics m4 = compute_metrics(g, Shape::nchw(4, 3, 224, 224));
  EXPECT_NEAR(m4.flops, 4.0 * m1.flops, 1e-6 * m4.flops);
  EXPECT_NEAR(m4.compute_inputs, 4.0 * m1.compute_inputs, 1e-9);
}

}  // namespace
}  // namespace convmeter
