// Tests for the observability subsystem: span tracer (nesting,
// multi-threaded recording, Chrome trace export), metrics registry
// (counters, histogram percentile math), and prediction-residual telemetry
// wired through the real executor + roofline cost model.
#include <gtest/gtest.h>

#include <set>
#include <thread>

#include "common/json.hpp"
#include "exec/executor.hpp"
#include "exec/thread_pool.hpp"
#include "exec/trainer.hpp"
#include "models/zoo.hpp"
#include "obs/metrics_registry.hpp"
#include "obs/residuals.hpp"
#include "obs/trace.hpp"
#include "sim/device.hpp"
#include "sim/residual_probe.hpp"

namespace convmeter {
namespace {

/// Enables tracing for one test and restores a clean slate afterwards so
/// tests are order-independent.
class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::Tracer::instance().clear();
    obs::MetricsRegistry::instance().reset();
    obs::set_enabled(true);
  }
  void TearDown() override {
    obs::set_enabled(false);
    obs::Tracer::instance().clear();
    obs::MetricsRegistry::instance().reset();
  }
};

const obs::TraceEvent* find_event(const std::vector<obs::TraceEvent>& events,
                                  const std::string& name) {
  for (const auto& e : events) {
    if (e.name == name) return &e;
  }
  return nullptr;
}

TEST_F(ObsTest, DisabledRecordsNothing) {
  obs::set_enabled(false);
  {
    obs::TraceSpan span("should-not-appear", "test");
  }
  EXPECT_TRUE(obs::Tracer::instance().snapshot().empty());
}

TEST_F(ObsTest, NestedSpansTrackDepthAndContainment) {
  {
    obs::TraceSpan outer("outer", "test");
    {
      obs::TraceSpan inner("inner", "test");
    }
  }
  const auto events = obs::Tracer::instance().snapshot();
  ASSERT_EQ(events.size(), 2u);
  const obs::TraceEvent* outer = find_event(events, "outer");
  const obs::TraceEvent* inner = find_event(events, "inner");
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(outer->depth, 0u);
  EXPECT_EQ(inner->depth, 1u);
  // The inner span starts no earlier and ends no later than the outer one.
  EXPECT_GE(inner->ts_ns, outer->ts_ns);
  EXPECT_LE(inner->ts_ns + inner->dur_ns, outer->ts_ns + outer->dur_ns);
}

TEST_F(ObsTest, MultiThreadedRecordingFromThreadPool) {
  constexpr std::size_t kTasks = 64;
  ThreadPool pool(4);
  pool.parallel_for(kTasks, [](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      obs::TraceSpan span("pool-task", "test");
    }
  });
  const auto events = obs::Tracer::instance().snapshot();
  std::size_t task_spans = 0;
  std::set<std::uint32_t> tids;
  for (const auto& e : events) {
    if (e.name != "pool-task") continue;
    ++task_spans;
    tids.insert(e.tid);
  }
  EXPECT_EQ(task_spans, kTasks);
  // A 4-thread pool plus the caller: at least two distinct recording
  // threads must show up (static scheduling spreads 64 tasks evenly).
  EXPECT_GE(tids.size(), 2u);
}

TEST_F(ObsTest, SpansFromExitedThreadsSurvive) {
  std::thread t([] { obs::TraceSpan span("short-lived", "test"); });
  t.join();
  EXPECT_NE(find_event(obs::Tracer::instance().snapshot(), "short-lived"),
            nullptr);
}

TEST_F(ObsTest, CounterAndGauge) {
  auto& registry = obs::MetricsRegistry::instance();
  registry.counter("test.counter").add();
  registry.counter("test.counter").add(41);
  registry.gauge("test.gauge").set(2.5);
  EXPECT_EQ(registry.counter("test.counter").value(), 42u);
  EXPECT_DOUBLE_EQ(registry.gauge("test.gauge").value(), 2.5);
}

TEST(HistogramTest, PercentilesAgainstKnownInputs) {
  // Unit-width buckets covering 0.5 .. 100.5: value v lands alone in its
  // own bucket, so interpolated percentiles are exact to within one bucket.
  std::vector<double> bounds;
  for (int i = 0; i <= 100; ++i) bounds.push_back(0.5 + i);
  obs::Histogram h(bounds);
  for (int v = 1; v <= 100; ++v) h.observe(static_cast<double>(v));

  EXPECT_EQ(h.count(), 100u);
  EXPECT_DOUBLE_EQ(h.sum(), 5050.0);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 100.0);
  EXPECT_NEAR(h.percentile(50), 50.0, 1.0);
  EXPECT_NEAR(h.percentile(95), 95.0, 1.0);
  EXPECT_NEAR(h.percentile(99), 99.0, 1.0);
  EXPECT_DOUBLE_EQ(h.percentile(100), 100.0);
  EXPECT_DOUBLE_EQ(h.percentile(0), 1.0);
}

TEST(HistogramTest, OverflowBucketClampsToObservedMax) {
  obs::Histogram h({1.0, 10.0});
  h.observe(0.5);
  h.observe(5000.0);  // overflow bucket
  EXPECT_EQ(h.bucket_counts().back(), 1u);
  EXPECT_DOUBLE_EQ(h.percentile(100), 5000.0);
}

TEST(HistogramTest, EmptyHistogram) {
  obs::Histogram h(obs::default_time_buckets());
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.percentile(50), 0.0);
}

TEST_F(ObsTest, RegistryJsonRoundTrips) {
  auto& registry = obs::MetricsRegistry::instance();
  registry.counter("json.counter").add(7);
  registry.histogram("json.hist").observe(0.001);
  registry.histogram("json.hist").observe(0.002);

  const json::Value doc = json::parse(registry.to_json());
  EXPECT_EQ(doc.at("counters").at("json.counter").as_number(), 7.0);
  const json::Value& hist = doc.at("histograms").at("json.hist");
  EXPECT_EQ(hist.at("count").as_number(), 2.0);
  EXPECT_GT(hist.at("p50").as_number(), 0.0);
  EXPECT_FALSE(hist.at("buckets").as_array().empty());
}

/// The acceptance-criteria trace: a real forward pass plus one training
/// step of a zoo model must yield a valid Chrome trace with >= 1 span per
/// graph layer and nested fwd/bwd phases.
TEST_F(ObsTest, ChromeTraceOfExecutorAndTrainerIsValid) {
  const Graph g = models::build("resnet18");
  const Shape shape = Shape::nchw(2, g.input_channels(), 32, 32);

  Executor exec;
  exec.run_random(g, shape);

  Trainer trainer(g, TrainerConfig{});
  Tensor input(shape);
  input.fill_random(1);
  trainer.step(input, {0, 1});

  const json::Value doc =
      json::parse(obs::Tracer::instance().chrome_trace_json());
  const auto& events = doc.at("traceEvents").as_array();
  ASSERT_FALSE(events.empty());

  std::size_t layer_spans = 0;
  bool saw_fwd = false;
  bool saw_bwd = false;
  bool saw_update = false;
  double step_depth = -1.0;
  double fwd_depth = -1.0;
  for (const json::Value& e : events) {
    // Required Chrome trace-event fields on every span.
    EXPECT_EQ(e.at("ph").as_string(), "X");
    EXPECT_TRUE(e.at("ts").is_number());
    EXPECT_TRUE(e.at("dur").is_number());
    EXPECT_TRUE(e.at("tid").is_number());
    const std::string& name = e.at("name").as_string();
    if (e.at("cat").as_string() == "layer") ++layer_spans;
    if (name == "trainer.fwd") {
      saw_fwd = true;
      fwd_depth = e.at("args").at("depth").as_number();
    }
    if (name == "trainer.bwd") saw_bwd = true;
    if (name == "trainer.grad_update") saw_update = true;
    if (name == "trainer.step") {
      step_depth = e.at("args").at("depth").as_number();
    }
  }
  // One span per graph layer from the executor pass alone.
  EXPECT_GE(layer_spans, g.size());
  EXPECT_TRUE(saw_fwd);
  EXPECT_TRUE(saw_bwd);
  EXPECT_TRUE(saw_update);
  // fwd/bwd phases nest inside the training step.
  EXPECT_GT(fwd_depth, step_depth);
  EXPECT_GE(step_depth, 0.0);
}

TEST_F(ObsTest, RelativeError) {
  EXPECT_DOUBLE_EQ(obs::relative_error(1.5, 1.0), 0.5);
  EXPECT_DOUBLE_EQ(obs::relative_error(0.5, 1.0), 0.5);
  EXPECT_DOUBLE_EQ(obs::relative_error(2.0, 0.0), 2.0);
}

/// Acceptance criterion: residual histograms with p50/p95/p99 per op-type
/// for a real model, fed by the executor + cost-model probe.
TEST_F(ObsTest, ResidualHistogramsPerOpType) {
  const Graph g = models::build("resnet18");
  const Shape shape = Shape::nchw(2, g.input_channels(), 32, 32);

  Executor exec;
  const ExecutionResult run = exec.run_random(g, shape);
  std::vector<MeasuredLayerTime> measured;
  for (const LayerTiming& layer : run.layers) {
    measured.push_back({layer.node, layer.seconds});
  }

  auto& registry = obs::MetricsRegistry::instance();
  const std::size_t recorded = record_layer_residuals(
      registry, xeon_gold_5318y_core(), g, shape, measured);
  EXPECT_GT(recorded, g.size() / 2);

  // ResNet-18 exercises at least conv2d, batch_norm2d, activation, linear —
  // and the whole-graph rollup.
  for (const std::string op :
       {"conv2d", "batch_norm2d", "activation", "linear", "graph"}) {
    const auto stats = obs::residual_stats(registry, op);
    ASSERT_TRUE(stats.has_value()) << "no residuals for op " << op;
    EXPECT_GT(stats->count, 0u);
    EXPECT_GE(stats->p50, 0.0);
    EXPECT_LE(stats->p50, stats->p95);
    EXPECT_LE(stats->p95, stats->p99);
  }
  EXPECT_EQ(registry.counter("residual.pairs").value(),
            static_cast<std::uint64_t>(recorded));
}

TEST_F(ObsTest, ResidualStatsAbsentWithoutRecords) {
  EXPECT_FALSE(
      obs::residual_stats(obs::MetricsRegistry::instance(), "conv2d")
          .has_value());
}

}  // namespace
}  // namespace convmeter
