// Tests for the observability subsystem: span tracer (nesting,
// multi-threaded recording, Chrome trace export), metrics registry
// (counters, histogram percentile math), adversarial-name JSON escaping,
// OpenMetrics exposition conformance, snapshot consistency under
// concurrent writers (run under TSan in CI), and prediction-residual
// telemetry wired through the real executor + roofline cost model.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>

#include "common/json.hpp"
#include "exec/executor.hpp"
#include "exec/thread_pool.hpp"
#include "exec/trainer.hpp"
#include "models/zoo.hpp"
#include "obs/exposition.hpp"
#include "obs/metrics_registry.hpp"
#include "obs/residuals.hpp"
#include "obs/trace.hpp"
#include "sim/device.hpp"
#include "sim/residual_probe.hpp"

namespace convmeter {
namespace {

/// Enables tracing for one test and restores a clean slate afterwards so
/// tests are order-independent.
class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::Tracer::instance().clear();
    obs::MetricsRegistry::instance().reset();
    obs::set_enabled(true);
  }
  void TearDown() override {
    obs::set_enabled(false);
    obs::Tracer::instance().clear();
    obs::MetricsRegistry::instance().reset();
  }
};

const obs::TraceEvent* find_event(const std::vector<obs::TraceEvent>& events,
                                  const std::string& name) {
  for (const auto& e : events) {
    if (e.name == name) return &e;
  }
  return nullptr;
}

TEST_F(ObsTest, DisabledRecordsNothing) {
  obs::set_enabled(false);
  {
    obs::TraceSpan span("should-not-appear", "test");
  }
  EXPECT_TRUE(obs::Tracer::instance().snapshot().empty());
}

TEST_F(ObsTest, NestedSpansTrackDepthAndContainment) {
  {
    obs::TraceSpan outer("outer", "test");
    {
      obs::TraceSpan inner("inner", "test");
    }
  }
  const auto events = obs::Tracer::instance().snapshot();
  ASSERT_EQ(events.size(), 2u);
  const obs::TraceEvent* outer = find_event(events, "outer");
  const obs::TraceEvent* inner = find_event(events, "inner");
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(outer->depth, 0u);
  EXPECT_EQ(inner->depth, 1u);
  // The inner span starts no earlier and ends no later than the outer one.
  EXPECT_GE(inner->ts_ns, outer->ts_ns);
  EXPECT_LE(inner->ts_ns + inner->dur_ns, outer->ts_ns + outer->dur_ns);
}

TEST_F(ObsTest, MultiThreadedRecordingFromThreadPool) {
  constexpr std::size_t kTasks = 64;
  ThreadPool pool(4);
  pool.parallel_for(kTasks, [](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      obs::TraceSpan span("pool-task", "test");
    }
  });
  const auto events = obs::Tracer::instance().snapshot();
  std::size_t task_spans = 0;
  std::set<std::uint32_t> tids;
  for (const auto& e : events) {
    if (e.name != "pool-task") continue;
    ++task_spans;
    tids.insert(e.tid);
  }
  EXPECT_EQ(task_spans, kTasks);
  // A 4-thread pool plus the caller: at least two distinct recording
  // threads must show up (static scheduling spreads 64 tasks evenly).
  EXPECT_GE(tids.size(), 2u);
}

TEST_F(ObsTest, SpansFromExitedThreadsSurvive) {
  std::thread t([] { obs::TraceSpan span("short-lived", "test"); });
  t.join();
  EXPECT_NE(find_event(obs::Tracer::instance().snapshot(), "short-lived"),
            nullptr);
}

TEST_F(ObsTest, CounterAndGauge) {
  auto& registry = obs::MetricsRegistry::instance();
  registry.counter("test.counter").add();
  registry.counter("test.counter").add(41);
  registry.gauge("test.gauge").set(2.5);
  EXPECT_EQ(registry.counter("test.counter").value(), 42u);
  EXPECT_DOUBLE_EQ(registry.gauge("test.gauge").value(), 2.5);
}

TEST(HistogramTest, PercentilesAgainstKnownInputs) {
  // Unit-width buckets covering 0.5 .. 100.5: value v lands alone in its
  // own bucket, so interpolated percentiles are exact to within one bucket.
  std::vector<double> bounds;
  for (int i = 0; i <= 100; ++i) bounds.push_back(0.5 + i);
  obs::Histogram h(bounds);
  for (int v = 1; v <= 100; ++v) h.observe(static_cast<double>(v));

  EXPECT_EQ(h.count(), 100u);
  EXPECT_DOUBLE_EQ(h.sum(), 5050.0);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 100.0);
  EXPECT_NEAR(h.percentile(50), 50.0, 1.0);
  EXPECT_NEAR(h.percentile(95), 95.0, 1.0);
  EXPECT_NEAR(h.percentile(99), 99.0, 1.0);
  EXPECT_DOUBLE_EQ(h.percentile(100), 100.0);
  EXPECT_DOUBLE_EQ(h.percentile(0), 1.0);
}

TEST(HistogramTest, OverflowBucketClampsToObservedMax) {
  obs::Histogram h({1.0, 10.0});
  h.observe(0.5);
  h.observe(5000.0);  // overflow bucket
  EXPECT_EQ(h.bucket_counts().back(), 1u);
  EXPECT_DOUBLE_EQ(h.percentile(100), 5000.0);
}

TEST(HistogramTest, EmptyHistogram) {
  obs::Histogram h(obs::default_time_buckets());
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.percentile(50), 0.0);
}

TEST_F(ObsTest, RegistryJsonRoundTrips) {
  auto& registry = obs::MetricsRegistry::instance();
  registry.counter("json.counter").add(7);
  registry.histogram("json.hist").observe(0.001);
  registry.histogram("json.hist").observe(0.002);

  const json::Value doc = json::parse(registry.to_json());
  EXPECT_EQ(doc.at("counters").at("json.counter").as_number(), 7.0);
  const json::Value& hist = doc.at("histograms").at("json.hist");
  EXPECT_EQ(hist.at("count").as_number(), 2.0);
  EXPECT_GT(hist.at("p50").as_number(), 0.0);
  EXPECT_FALSE(hist.at("buckets").as_array().empty());
}

/// The acceptance-criteria trace: a real forward pass plus one training
/// step of a zoo model must yield a valid Chrome trace with >= 1 span per
/// graph layer and nested fwd/bwd phases.
TEST_F(ObsTest, ChromeTraceOfExecutorAndTrainerIsValid) {
  const Graph g = models::build("resnet18");
  const Shape shape = Shape::nchw(2, g.input_channels(), 32, 32);

  Executor exec;
  exec.run_random(g, shape);

  Trainer trainer(g, TrainerConfig{});
  Tensor input(shape);
  input.fill_random(1);
  trainer.step(input, {0, 1});

  const json::Value doc =
      json::parse(obs::Tracer::instance().chrome_trace_json());
  const auto& events = doc.at("traceEvents").as_array();
  ASSERT_FALSE(events.empty());

  std::size_t layer_spans = 0;
  bool saw_fwd = false;
  bool saw_bwd = false;
  bool saw_update = false;
  double step_depth = -1.0;
  double fwd_depth = -1.0;
  for (const json::Value& e : events) {
    // Required Chrome trace-event fields on every span.
    EXPECT_EQ(e.at("ph").as_string(), "X");
    EXPECT_TRUE(e.at("ts").is_number());
    EXPECT_TRUE(e.at("dur").is_number());
    EXPECT_TRUE(e.at("tid").is_number());
    const std::string& name = e.at("name").as_string();
    if (e.at("cat").as_string() == "layer") ++layer_spans;
    if (name == "trainer.fwd") {
      saw_fwd = true;
      fwd_depth = e.at("args").at("depth").as_number();
    }
    if (name == "trainer.bwd") saw_bwd = true;
    if (name == "trainer.grad_update") saw_update = true;
    if (name == "trainer.step") {
      step_depth = e.at("args").at("depth").as_number();
    }
  }
  // One span per graph layer from the executor pass alone.
  EXPECT_GE(layer_spans, g.size());
  EXPECT_TRUE(saw_fwd);
  EXPECT_TRUE(saw_bwd);
  EXPECT_TRUE(saw_update);
  // fwd/bwd phases nest inside the training step.
  EXPECT_GT(fwd_depth, step_depth);
  EXPECT_GE(step_depth, 0.0);
}

/// Span and metric names are user-controlled (model names flow into span
/// labels), so both JSON exports must survive quotes, backslashes, and
/// control characters — the exact bytes come back out of a strict parse.
TEST_F(ObsTest, AdversarialNamesSurviveJsonExport) {
  const std::string evil =
      "quote\" backslash\\ newline\n tab\t bell\x07 del\x7f";
  {
    obs::TraceSpan span(evil, "cat\"egory\\\n");
  }
  const json::Value trace =
      json::parse(obs::Tracer::instance().chrome_trace_json());
  const auto& events = trace.at("traceEvents").as_array();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].at("name").as_string(), evil);
  EXPECT_EQ(events[0].at("cat").as_string(), "cat\"egory\\\n");

  auto& registry = obs::MetricsRegistry::instance();
  registry.counter(evil).add(5);
  registry.histogram(evil + ".hist").observe(0.25);
  const json::Value doc = json::parse(registry.to_json());
  EXPECT_EQ(doc.at("counters").at(evil).as_number(), 5.0);
  EXPECT_EQ(doc.at("histograms").at(evil + ".hist").at("count").as_number(),
            1.0);
}

TEST_F(ObsTest, OpenMetricsNameSanitization) {
  EXPECT_EQ(obs::openmetrics_name("executor.run_seconds"),
            "convmeter_executor_run_seconds");
  EXPECT_EQ(obs::openmetrics_name("weird name/with:stuff"),
            "convmeter_weird_name_with:stuff");
}

/// OpenMetrics conformance of the exposition: one `# TYPE` per family,
/// `_total` counters, cumulative buckets ending in `+Inf`, explicit
/// percentile gauges, and a terminating `# EOF`.
TEST_F(ObsTest, OpenMetricsExpositionConformance) {
  auto& registry = obs::MetricsRegistry::instance();
  registry.counter("om.requests").add(7);
  registry.gauge("om.temperature").set(21.5);
  for (int i = 1; i <= 100; ++i) {
    registry.histogram("om.latency_seconds").observe(i * 1e-3);
  }

  const std::string text = obs::openmetrics_text(registry);
  EXPECT_NE(text.find("# TYPE convmeter_om_requests counter"),
            std::string::npos);
  EXPECT_NE(text.find("convmeter_om_requests_total 7"), std::string::npos);
  EXPECT_NE(text.find("# TYPE convmeter_om_temperature gauge"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE convmeter_om_latency_seconds histogram"),
            std::string::npos);
  EXPECT_NE(text.find("convmeter_om_latency_seconds_bucket{le=\"+Inf\"} 100"),
            std::string::npos);
  EXPECT_NE(text.find("convmeter_om_latency_seconds_count 100"),
            std::string::npos);
  for (const char* pct : {"_p50", "_p95", "_p99"}) {
    EXPECT_NE(text.find(std::string("convmeter_om_latency_seconds") + pct),
              std::string::npos)
        << pct;
  }

  // # EOF terminates the exposition and appears exactly once, at the end.
  const std::size_t eof = text.rfind("# EOF\n");
  ASSERT_NE(eof, std::string::npos);
  EXPECT_EQ(eof + 6, text.size());
  EXPECT_EQ(text.find("# EOF"), eof);

  // No family is declared twice.
  std::set<std::string> families;
  std::size_t pos = 0;
  while ((pos = text.find("# TYPE ", pos)) != std::string::npos) {
    const std::size_t name_begin = pos + 7;
    const std::size_t name_end = text.find(' ', name_begin);
    const std::string family = text.substr(name_begin, name_end - name_begin);
    EXPECT_TRUE(families.insert(family).second)
        << "duplicate family " << family;
    pos = name_end;
  }
}

/// Snapshot consistency under concurrent writers: counters read from
/// interleaved snapshots are monotonic, quantiles stay inside the observed
/// value range, and the final totals are exact. CI runs this under TSan.
TEST_F(ObsTest, SnapshotsStayConsistentUnderConcurrentWriters) {
  constexpr int kWriters = 4;
  constexpr int kAddsPerWriter = 2000;
  auto& registry = obs::MetricsRegistry::instance();
  std::atomic<bool> stop{false};

  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&registry, w] {
      for (int i = 0; i < kAddsPerWriter; ++i) {
        registry.counter("tsan.adds").add();
        registry.histogram("tsan.values").observe(1.0 + (w + i) % 10);
      }
    });
  }

  // Reader: interleaved full snapshots through both exporters while the
  // writers hammer the registry.
  std::uint64_t last_count = 0;
  while (!stop.load(std::memory_order_relaxed)) {
    const json::Value doc = json::parse(registry.to_json());
    const auto& counters = doc.at("counters").as_object();
    const auto it = counters.find("tsan.adds");
    if (it != counters.end()) {
      const auto count = static_cast<std::uint64_t>(it->second.as_number());
      EXPECT_GE(count, last_count) << "counter went backwards";
      last_count = count;
    }
    const std::string om = obs::openmetrics_text(registry);
    EXPECT_NE(om.find("# EOF"), std::string::npos);
    if (last_count ==
        static_cast<std::uint64_t>(kWriters) * kAddsPerWriter) {
      stop.store(true, std::memory_order_relaxed);
    }
  }
  for (auto& t : writers) t.join();

  EXPECT_EQ(registry.counter("tsan.adds").value(),
            static_cast<std::uint64_t>(kWriters) * kAddsPerWriter);
  const obs::Histogram& h = registry.histogram("tsan.values");
  EXPECT_EQ(h.count(), static_cast<std::uint64_t>(kWriters) * kAddsPerWriter);
  EXPECT_GE(h.percentile(50), h.min());
  EXPECT_LE(h.percentile(99), h.max());
  EXPECT_LE(h.percentile(50), h.percentile(95));
  EXPECT_LE(h.percentile(95), h.percentile(99));
}

TEST_F(ObsTest, RelativeError) {
  EXPECT_DOUBLE_EQ(obs::relative_error(1.5, 1.0), 0.5);
  EXPECT_DOUBLE_EQ(obs::relative_error(0.5, 1.0), 0.5);
  EXPECT_DOUBLE_EQ(obs::relative_error(2.0, 0.0), 2.0);
}

/// Acceptance criterion: residual histograms with p50/p95/p99 per op-type
/// for a real model, fed by the executor + cost-model probe.
TEST_F(ObsTest, ResidualHistogramsPerOpType) {
  const Graph g = models::build("resnet18");
  const Shape shape = Shape::nchw(2, g.input_channels(), 32, 32);

  Executor exec;
  const ExecutionResult run = exec.run_random(g, shape);
  std::vector<MeasuredLayerTime> measured;
  for (const LayerTiming& layer : run.layers) {
    measured.push_back({layer.node, layer.seconds});
  }

  auto& registry = obs::MetricsRegistry::instance();
  const std::size_t recorded = record_layer_residuals(
      registry, xeon_gold_5318y_core(), g, shape, measured);
  EXPECT_GT(recorded, g.size() / 2);

  // ResNet-18 exercises at least conv2d, batch_norm2d, activation, linear —
  // and the whole-graph rollup.
  for (const std::string op :
       {"conv2d", "batch_norm2d", "activation", "linear", "graph"}) {
    const auto stats = obs::residual_stats(registry, op);
    ASSERT_TRUE(stats.has_value()) << "no residuals for op " << op;
    EXPECT_GT(stats->count, 0u);
    EXPECT_GE(stats->p50, 0.0);
    EXPECT_LE(stats->p50, stats->p95);
    EXPECT_LE(stats->p95, stats->p99);
  }
  EXPECT_EQ(registry.counter("residual.pairs").value(),
            static_cast<std::uint64_t>(recorded));
}

TEST_F(ObsTest, ResidualStatsAbsentWithoutRecords) {
  EXPECT_FALSE(
      obs::residual_stats(obs::MetricsRegistry::instance(), "conv2d")
          .has_value());
}

}  // namespace
}  // namespace convmeter
