// Linear algebra tests: QR least squares, Cholesky/ridge, statistics.
// Includes the planted-coefficient recovery property the regression relies
// on.
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "linalg/matrix.hpp"
#include "linalg/stats.hpp"

namespace convmeter {
namespace {

TEST(MatrixTest, IndexingAndBounds) {
  Matrix m(2, 3);
  m(1, 2) = 5.0;
  EXPECT_DOUBLE_EQ(m(1, 2), 5.0);
  EXPECT_THROW(m(2, 0), InvalidArgument);
  EXPECT_THROW(m(0, 3), InvalidArgument);
}

TEST(MatrixTest, TimesMatchesHandComputation) {
  Matrix m(2, 2);
  m(0, 0) = 1;
  m(0, 1) = 2;
  m(1, 0) = 3;
  m(1, 1) = 4;
  const Vector y = m.times({1.0, 1.0});
  EXPECT_DOUBLE_EQ(y[0], 3.0);
  EXPECT_DOUBLE_EQ(y[1], 7.0);
}

TEST(MatrixTest, GramIsSymmetric) {
  Rng rng(1);
  Matrix m(5, 3);
  for (std::size_t r = 0; r < 5; ++r) {
    for (std::size_t c = 0; c < 3; ++c) m(r, c) = rng.normal();
  }
  const Matrix g = m.gram();
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 3; ++j) {
      EXPECT_DOUBLE_EQ(g(i, j), g(j, i));
    }
  }
}

TEST(MatrixTest, TransposeTimes) {
  Matrix m(2, 2);
  m(0, 0) = 1;
  m(0, 1) = 2;
  m(1, 0) = 3;
  m(1, 1) = 4;
  const Vector v = m.transpose_times({1.0, 2.0});
  EXPECT_DOUBLE_EQ(v[0], 7.0);   // 1*1 + 3*2
  EXPECT_DOUBLE_EQ(v[1], 10.0);  // 2*1 + 4*2
}

TEST(LeastSquaresTest, ExactSquareSystem) {
  Matrix a(2, 2);
  a(0, 0) = 2;
  a(0, 1) = 0;
  a(1, 0) = 0;
  a(1, 1) = 4;
  const Vector x = solve_least_squares(a, {6.0, 8.0});
  EXPECT_NEAR(x[0], 3.0, 1e-12);
  EXPECT_NEAR(x[1], 2.0, 1e-12);
}

TEST(LeastSquaresTest, OverdeterminedProjects) {
  // Fit y = 2x + 1 through three exact points.
  Matrix a(3, 2);
  const double xs[3] = {0.0, 1.0, 2.0};
  Vector y(3);
  for (int i = 0; i < 3; ++i) {
    a(static_cast<std::size_t>(i), 0) = xs[i];
    a(static_cast<std::size_t>(i), 1) = 1.0;
    y[static_cast<std::size_t>(i)] = 2.0 * xs[i] + 1.0;
  }
  const Vector c = solve_least_squares(a, y);
  EXPECT_NEAR(c[0], 2.0, 1e-12);
  EXPECT_NEAR(c[1], 1.0, 1e-12);
}

TEST(LeastSquaresTest, RankDeficientThrows) {
  Matrix a(3, 2);
  for (int i = 0; i < 3; ++i) {
    a(static_cast<std::size_t>(i), 0) = 1.0;
    a(static_cast<std::size_t>(i), 1) = 1.0;  // duplicate column
  }
  EXPECT_THROW(solve_least_squares(a, {1.0, 2.0, 3.0}), NumericalError);
}

TEST(LeastSquaresTest, RequiresEnoughRows) {
  Matrix a(1, 2, 1.0);
  EXPECT_THROW(solve_least_squares(a, {1.0}), InvalidArgument);
}

/// Planted-coefficient property: with noisy observations of a known linear
/// model, QR least squares recovers the coefficients.
class PlantedRecovery : public ::testing::TestWithParam<double> {};

TEST_P(PlantedRecovery, RecoversCoefficientsUnderNoise) {
  const double sigma = GetParam();
  Rng rng(77);
  const Vector truth = {3.0, -2.0, 0.5};
  constexpr std::size_t n = 400;
  Matrix a(n, 3);
  Vector y(n);
  for (std::size_t r = 0; r < n; ++r) {
    double acc = 0.0;
    for (std::size_t c = 0; c < 3; ++c) {
      a(r, c) = rng.uniform(-1.0, 1.0);
      acc += a(r, c) * truth[c];
    }
    y[r] = acc + rng.normal(0.0, sigma);
  }
  const Vector est = solve_least_squares(a, y);
  for (std::size_t c = 0; c < 3; ++c) {
    EXPECT_NEAR(est[c], truth[c], 5.0 * sigma / std::sqrt(n) + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(NoiseLevels, PlantedRecovery,
                         ::testing::Values(0.0, 0.01, 0.1, 0.5));

TEST(RidgeTest, MatchesOlsForTinyLambda) {
  Rng rng(5);
  Matrix a(50, 3);
  Vector y(50);
  for (std::size_t r = 0; r < 50; ++r) {
    for (std::size_t c = 0; c < 3; ++c) a(r, c) = rng.normal();
    y[r] = a(r, 0) - a(r, 2) + rng.normal(0.0, 0.01);
  }
  const Vector ols = solve_least_squares(a, y);
  const Vector ridge = solve_ridge(a, y, 1e-10);
  for (std::size_t c = 0; c < 3; ++c) EXPECT_NEAR(ridge[c], ols[c], 1e-6);
}

TEST(RidgeTest, HandlesRankDeficiency) {
  Matrix a(4, 2);
  for (std::size_t r = 0; r < 4; ++r) {
    a(r, 0) = 1.0;
    a(r, 1) = 1.0;
  }
  const Vector x = solve_ridge(a, {2.0, 2.0, 2.0, 2.0}, 1e-6);
  // Symmetric problem -> symmetric solution, each coefficient ~1.
  EXPECT_NEAR(x[0], x[1], 1e-9);
  EXPECT_NEAR(x[0] + x[1], 2.0, 1e-3);
}

TEST(RidgeTest, ShrinksTowardZeroForLargeLambda) {
  Matrix a(3, 1);
  a(0, 0) = 1;
  a(1, 0) = 2;
  a(2, 0) = 3;
  const Vector small = solve_ridge(a, {1.0, 2.0, 3.0}, 1e-9);
  const Vector big = solve_ridge(a, {1.0, 2.0, 3.0}, 1e6);
  EXPECT_NEAR(small[0], 1.0, 1e-6);
  EXPECT_LT(std::fabs(big[0]), 0.01);
}

TEST(SpdTest, SolvesKnownSystem) {
  Matrix s(2, 2);
  s(0, 0) = 4;
  s(0, 1) = 1;
  s(1, 0) = 1;
  s(1, 1) = 3;
  const Vector x = solve_spd(s, {1.0, 2.0});
  EXPECT_NEAR(4 * x[0] + 1 * x[1], 1.0, 1e-12);
  EXPECT_NEAR(1 * x[0] + 3 * x[1], 2.0, 1e-12);
}

TEST(SpdTest, RejectsIndefinite) {
  Matrix s(2, 2);
  s(0, 0) = 1;
  s(0, 1) = 2;
  s(1, 0) = 2;
  s(1, 1) = 1;  // eigenvalues 3, -1
  EXPECT_THROW(solve_spd(s, {1.0, 1.0}), NumericalError);
}

TEST(StatsTest, BasicMoments) {
  const std::vector<double> v = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(mean(v), 2.5);
  EXPECT_DOUBLE_EQ(variance(v), 1.25);
  EXPECT_DOUBLE_EQ(stddev(v), std::sqrt(1.25));
  EXPECT_DOUBLE_EQ(min_value(v), 1.0);
  EXPECT_DOUBLE_EQ(max_value(v), 4.0);
}

TEST(StatsTest, MedianOddAndEven) {
  EXPECT_DOUBLE_EQ(median({3.0, 1.0, 2.0}), 2.0);
  EXPECT_DOUBLE_EQ(median({4.0, 1.0, 2.0, 3.0}), 2.5);
}

TEST(StatsTest, EmptyInputThrows) {
  EXPECT_THROW(mean({}), InvalidArgument);
  EXPECT_THROW(median({}), InvalidArgument);
  EXPECT_THROW(min_value({}), InvalidArgument);
}

TEST(StatsTest, PearsonPerfectCorrelation) {
  const std::vector<double> x = {1, 2, 3, 4};
  const std::vector<double> y = {2, 4, 6, 8};
  EXPECT_NEAR(pearson(x, y), 1.0, 1e-12);
  const std::vector<double> ny = {-2, -4, -6, -8};
  EXPECT_NEAR(pearson(x, ny), -1.0, 1e-12);
}

TEST(StatsTest, PearsonValidation) {
  EXPECT_THROW(pearson({1.0}, {1.0}), InvalidArgument);
  EXPECT_THROW(pearson({1.0, 2.0}, {1.0}), InvalidArgument);
  EXPECT_THROW(pearson({1.0, 1.0}, {1.0, 2.0}), InvalidArgument);
}

}  // namespace
}  // namespace convmeter
