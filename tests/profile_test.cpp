// Attribution-profiler tests: per-layer linear dissection summing to the
// whole-net prediction, ranked-residual report invariants, the JSON twin's
// bit-for-bit agreement with the text table, graceful hardware-counter
// degradation, the OpenMetrics stats server scraped over a real socket,
// and the crash flight recorder (direct dump and a forked SIGABRT child).
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <array>
#include <charconv>
#include <cmath>
#include <csignal>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "common/json.hpp"
#include "core/convmeter.hpp"
#include "models/zoo.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics_registry.hpp"
#include "obs/profile/session.hpp"
#include "obs/stats_server.hpp"
#include "obs/trace.hpp"
#include "predict/predictors.hpp"
#include "predict/registry.hpp"

namespace convmeter {
namespace {

/// Restores a clean observability slate around every test; profile_model
/// force-enables tracing, so order independence needs an explicit reset.
class ProfileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::Tracer::instance().clear();
    obs::MetricsRegistry::instance().reset();
    obs::set_enabled(true);
  }
  void TearDown() override {
    obs::set_enabled(false);
    obs::Tracer::instance().clear();
    obs::MetricsRegistry::instance().reset();
  }
};

/// A small, fast profiling subject: squeezenet at 32 px, one repetition.
obs::ProfileOptions fast_options() {
  obs::ProfileOptions options;
  options.image = 32;
  options.batch = 1;
  options.repetitions = 1;
  return options;
}

/// Synthetic samples following the paper's linear functional form so the
/// convmeter family fits exactly (same planting as predictor_test).
std::vector<RuntimeSample> planted_samples() {
  std::vector<RuntimeSample> samples;
  int mdl = 0;
  for (const double f : {1e9, 3e9, 9e9, 27e9}) {
    for (const double batch : {1.0, 4.0, 8.0, 32.0, 64.0}) {
      RuntimeSample s;
      s.model = "net" + std::to_string(mdl % 4);
      s.device = "synthetic";
      s.image_size = 64;
      s.global_batch = static_cast<std::int64_t>(batch);
      s.flops1 = f;
      s.inputs1 = f / 400.0;
      s.outputs1 = f / 320.0;
      s.weights = f / 80.0;
      s.layers = 40.0 + f / 1e9;
      s.t_fwd =
          batch * (1e-12 * f + 2e-9 * s.inputs1 + 3e-9 * s.outputs1) + 1e-4;
      s.t_infer = s.t_fwd;
      s.t_bwd = 2.0 * s.t_fwd;
      s.t_grad = 1e-5 * s.layers;
      s.t_step = s.t_fwd + s.t_bwd + s.t_grad;
      samples.push_back(s);
    }
    ++mdl;
  }
  return samples;
}

std::string shortest(double v) {
  std::array<char, 32> buf{};
  const auto res = std::to_chars(buf.data(), buf.data() + buf.size(), v);
  return std::string(buf.data(), res.ptr);
}

TEST_F(ProfileTest, RooflineOnlyReportInvariants) {
  const Graph g = models::build("squeezenet1_1");
  const obs::ProfileReport report =
      obs::profile_model("squeezenet1_1", g, fast_options(), nullptr);

  EXPECT_EQ(report.attribution, "roofline-only");
  EXPECT_TRUE(report.predictor.empty());
  ASSERT_EQ(report.layers.size(), g.size());
  EXPECT_GT(report.wall_seconds, 0.0);
  EXPECT_GT(report.predicted_total_seconds, 0.0);

  // Per-layer measured means must account for (nearly) all of the wall
  // time: the executor's loop overhead between layers is the only gap.
  EXPECT_GT(report.layer_sum_seconds, 0.0);
  EXPECT_LE(report.layer_sum_seconds, report.wall_seconds * 1.05);
  EXPECT_GE(report.layer_sum_seconds, report.wall_seconds * 0.5);

  double fraction_sum = 0.0;
  double measured_sum = 0.0;
  for (const obs::LayerAttribution& row : report.layers) {
    fraction_sum += row.wall_fraction;
    measured_sum += row.measured_seconds;
    EXPECT_GE(row.measured_seconds, 0.0);
  }
  EXPECT_NEAR(fraction_sum, 1.0, 1e-9);
  EXPECT_NEAR(measured_sum, report.layer_sum_seconds, 1e-12);

  // The report's spine: rows ranked by |residual| descending.
  for (std::size_t i = 1; i < report.layers.size(); ++i) {
    EXPECT_GE(std::fabs(report.layers[i - 1].residual_seconds),
              std::fabs(report.layers[i].residual_seconds));
  }

  // Rollups partition the rows.
  std::size_t rolled_ops = 0;
  for (const obs::OpFamilyRollup& fam : report.rollups) {
    rolled_ops += fam.ops;
  }
  EXPECT_EQ(rolled_ops, report.layers.size());
}

TEST_F(ProfileTest, LinearDissectionSumsToWholeNetPrediction) {
  const auto predictor = make_predictor("convmeter", PredictorOptions{});
  ASSERT_NE(predictor, nullptr);
  predictor->fit(planted_samples());

  const Graph g = models::build("squeezenet1_1");
  const obs::ProfileOptions options = fast_options();
  const obs::ProfileReport report =
      obs::profile_model("squeezenet1_1", g, options, predictor.get());

  EXPECT_EQ(report.attribution, "linear-dissection");
  EXPECT_EQ(report.predictor, "convmeter");

  // The dissected per-layer estimates must reassemble the exact whole-net
  // *inference* prediction at this operating point — the invariant that
  // makes the drill-down trustworthy. (The convmeter family's predict()
  // targets the training step; the profiler measures a forward pass, so
  // its dissection is of the forward model.)
  QueryPoint q;
  q.metrics_b1 = compute_metrics_b1(g, options.image);
  q.per_device_batch = static_cast<double>(options.batch);
  const auto* cm = dynamic_cast<const ConvMeterPredictor*>(predictor.get());
  ASSERT_NE(cm, nullptr);
  const double whole_net = cm->model().predict_inference(q);
  ASSERT_GT(whole_net, 0.0);

  double layer_sum = 0.0;
  for (const obs::LayerAttribution& row : report.layers) {
    layer_sum += row.predicted_seconds;
  }
  EXPECT_NEAR(layer_sum, whole_net, std::fabs(whole_net) * 1e-6);
  EXPECT_NEAR(report.predicted_total_seconds, whole_net,
              std::fabs(whole_net) * 1e-6);
}

TEST_F(ProfileTest, OpaquePredictorSplitsByRoofline) {
  const auto predictor = make_predictor("flops-only", PredictorOptions{});
  ASSERT_NE(predictor, nullptr);
  predictor->fit(planted_samples());

  const Graph g = models::build("squeezenet1_1");
  const obs::ProfileReport report =
      obs::profile_model("squeezenet1_1", g, fast_options(), predictor.get());
  // flops-only is a PhaseLinearPredictor, so it still dissects; mlp/dippm
  // would split. Either way the per-layer estimates must sum to the total.
  double layer_sum = 0.0;
  for (const obs::LayerAttribution& row : report.layers) {
    layer_sum += row.predicted_seconds;
  }
  EXPECT_NEAR(layer_sum, report.predicted_total_seconds,
              std::fabs(report.predicted_total_seconds) * 1e-9);
}

TEST_F(ProfileTest, UnfittedPredictorIsRejected) {
  const auto predictor = make_predictor("convmeter", PredictorOptions{});
  const Graph g = models::build("squeezenet1_1");
  EXPECT_THROW(
      obs::profile_model("squeezenet1_1", g, fast_options(), predictor.get()),
      Error);
}

TEST_F(ProfileTest, JsonReportMatchesStructAndTextBitForBit) {
  const Graph g = models::build("squeezenet1_1");
  const obs::ProfileReport report =
      obs::profile_model("squeezenet1_1", g, fast_options(), nullptr);

  const json::Value doc = json::parse(report.render_json());
  EXPECT_EQ(doc.at("format").as_string(), obs::kProfileFormatName);
  EXPECT_EQ(doc.at("version").as_number(), obs::kProfileFormatVersion);
  EXPECT_EQ(doc.at("model").as_string(), "squeezenet1_1");
  EXPECT_TRUE(doc.at("predictor").is_null());

  const auto& rows = doc.at("layers").as_array();
  ASSERT_EQ(rows.size(), report.layers.size());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    // Shortest round-trip formatting parses back to the identical double,
    // so exact equality — not NEAR — is the correct assertion.
    EXPECT_EQ(rows[i].at("residual_seconds").as_number(),
              report.layers[i].residual_seconds);
    EXPECT_EQ(rows[i].at("node").as_number(),
              static_cast<double>(report.layers[i].node));
  }

  // The text table prints the same shortest-form residuals, so the top
  // row's residual string appears verbatim in both renderings.
  const std::string text = report.render_text(5);
  const std::string top_residual = shortest(report.layers[0].residual_seconds);
  EXPECT_NE(text.find(top_residual), std::string::npos);
  EXPECT_NE(report.render_json().find(top_residual), std::string::npos);
}

TEST_F(ProfileTest, CountersDegradeGracefully) {
  const Graph g = models::build("squeezenet1_1");
  const obs::ProfileReport report =
      obs::profile_model("squeezenet1_1", g, fast_options(), nullptr);

  if (report.counters_supported) {
    // Real hardware: the conv layers must have retired instructions.
    bool saw_cycles = false;
    for (const obs::LayerAttribution& row : report.layers) {
      if (row.counters.valid && row.counters.cycles > 0) saw_cycles = true;
    }
    EXPECT_TRUE(saw_cycles);
  } else {
    // Containers and locked-down kernels: a note says why, every row is
    // cleanly marked unmeasured, and the run still succeeds.
    EXPECT_FALSE(report.counters_note.empty());
    for (const obs::LayerAttribution& row : report.layers) {
      EXPECT_FALSE(row.counters.valid);
      EXPECT_EQ(row.measured_intensity, 0.0);
    }
  }
}

TEST_F(ProfileTest, CountersCanBeDisabled) {
  const Graph g = models::build("squeezenet1_1");
  obs::ProfileOptions options = fast_options();
  options.counters = false;
  const obs::ProfileReport report =
      obs::profile_model("squeezenet1_1", g, options, nullptr);
  EXPECT_FALSE(report.counters_supported);
  EXPECT_EQ(report.counters_note, "disabled by --counters 0");
}

// ---- stats server -----------------------------------------------------------

TEST_F(ProfileTest, StatsServerServesOpenMetricsOverSocket) {
  auto& registry = obs::MetricsRegistry::instance();
  registry.counter("scrape.test.counter").add(3);
  registry.histogram("scrape.test.seconds").observe(0.002);

  obs::StatsServerOptions options;
  options.port = 0;  // ephemeral
  options.max_requests = 1;
  obs::StatsServer server(registry, options);
  server.bind();
  ASSERT_GT(server.port(), 0);

  std::thread serve_thread([&server] { server.serve(); });

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(server.port()));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                      sizeof(addr)),
            0);
  const char* request =
      "GET /metrics HTTP/1.1\r\nHost: localhost\r\nConnection: close\r\n\r\n";
  ASSERT_GT(::send(fd, request, std::strlen(request), 0), 0);

  std::string response;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    response.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  serve_thread.join();

  EXPECT_NE(response.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(response.find("application/openmetrics-text"), std::string::npos);
  EXPECT_NE(response.find(
                "convmeter_scrape_test_counter_total 3"),
            std::string::npos);
  EXPECT_NE(response.find("# TYPE convmeter_scrape_test_seconds histogram"),
            std::string::npos);
  EXPECT_NE(response.find("le=\"+Inf\""), std::string::npos);
  EXPECT_NE(response.find("# EOF"), std::string::npos);
}

// ---- flight recorder --------------------------------------------------------

TEST_F(ProfileTest, FlightRecorderDirectDump) {
  const std::string path =
      ::testing::TempDir() + "profile_test_fr_direct.json";
  std::remove(path.c_str());

  auto& recorder = obs::FlightRecorder::instance();
  recorder.arm(path);
  {
    obs::TraceSpan span("fr.test.outer", "test");
    obs::TraceSpan inner("fr.test.inner", "test");
  }
  obs::MetricsRegistry::instance().counter("fr.test.counter").add(11);
  recorder.refresh_metrics_snapshot();
  ASSERT_TRUE(recorder.dump(0));

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream ss;
  ss << in.rdbuf();
  const json::Value doc = json::parse(ss.str());
  const auto& events = doc.at("traceEvents").as_array();
  ASSERT_FALSE(events.empty());
  bool saw_span = false;
  for (const json::Value& e : events) {
    EXPECT_EQ(e.at("ph").as_string(), "X");
    if (e.at("name").as_string() == "fr.test.inner") saw_span = true;
  }
  EXPECT_TRUE(saw_span);
  EXPECT_EQ(doc.at("otherData").at("signal").as_number(), 0.0);
  EXPECT_EQ(doc.at("otherData").at("metrics").at("fr.test.counter")
                .as_number(),
            11.0);
  std::remove(path.c_str());
}

TEST_F(ProfileTest, FlightRecorderDumpsOnFatalSignal) {
  const std::string path = ::testing::TempDir() + "profile_test_fr_crash.json";
  std::remove(path.c_str());

  const pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    // Child: arm, record a span, then die the way a real crash does. The
    // handler must write the dump and re-raise so the exit status still
    // says SIGABRT.
    obs::install_flight_recorder(path);
    {
      obs::TraceSpan span("fr.crash.marker", "test");
    }
    std::abort();
  }

  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFSIGNALED(status));
  EXPECT_EQ(WTERMSIG(status), SIGABRT);

  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "crash handler did not write " << path;
  std::stringstream ss;
  ss << in.rdbuf();
  const json::Value doc = json::parse(ss.str());
  EXPECT_EQ(doc.at("otherData").at("signal").as_number(),
            static_cast<double>(SIGABRT));
  bool saw_marker = false;
  for (const json::Value& e : doc.at("traceEvents").as_array()) {
    if (e.at("name").as_string() == "fr.crash.marker") saw_marker = true;
  }
  EXPECT_TRUE(saw_marker);
  std::remove(path.c_str());
}

TEST_F(ProfileTest, FlightRecorderRejectsOverlongPath) {
  EXPECT_THROW(obs::FlightRecorder::instance().arm(std::string(1024, 'x')),
               Error);
}

}  // namespace
}  // namespace convmeter
