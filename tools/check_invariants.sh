#!/usr/bin/env bash
# Repo-wide invariant lint. Cheap textual checks for conventions the compiler
# cannot enforce; run by CI (repo-lint job) and `ctest -R repo_invariants`.
#
#   1. Every workspace `ws.take(...)` is preceded by a `ws.reserve(...)` (or a
#      chained take) a few lines above in the same kernel body — take() after
#      an unsized arena is a hard error at runtime.
#   2. No naked new/delete in src/: ownership goes through containers and
#      smart pointers. Placement-new (`::new (`) and `= delete` are fine.
#   3. Metrics/residual telemetry is guarded: any obs::MetricsRegistry /
#      obs::record_prediction_residual call outside src/obs/ sits within a
#      few lines of an obs::enabled() check, so disabled builds pay nothing.
set -u

cd "$(dirname "$0")/.."
fail=0

note() {
  echo "invariant violation: $1" >&2
  fail=1
}

# --- 1. ws.take() must follow ws.reserve() --------------------------------
while IFS=: read -r file line _; do
  start=$((line > 8 ? line - 8 : 1))
  if ! sed -n "${start},$((line - 1))p" "$file" \
      | grep -qE 'ws\.(reserve|take)\('; then
    note "$file:$line: ws.take() without a ws.reserve() just above"
  fi
done < <(grep -rnE 'ws\.take\(' src --include='*.cpp' --include='*.hpp')

# --- 2. no naked new/delete in src/ ---------------------------------------
# Word-boundary matches; placement-new spells `::new (`, deleted special
# members spell `= delete`, and the obs layer's leaky singletons spell
# `static T* x = new T` (deliberately never destroyed so worker threads can
# record during static teardown) — all excluded. Comments mentioning the
# words are excluded by stripping `//` tails first.
while IFS=: read -r file line text; do
  code="${text%%//*}"
  case "$code" in
    *'::new ('*|*'= delete'*) continue ;;
  esac
  if echo "$code" | grep -qE 'static [[:alnum:]_:]+\* [[:alnum:]_]+ = new '; then
    continue
  fi
  if echo "$code" | grep -qE '(^|[^_[:alnum:]:>])(new|delete)([[:space:]]|\[|$)'; then
    note "$file:$line: naked new/delete (use containers or smart pointers)"
  fi
done < <(grep -rnE '(^|[^_[:alnum:]:>])(new|delete)([[:space:]]|\[)' \
         src --include='*.cpp' --include='*.hpp')

# --- 3. obs telemetry must be behind obs::enabled() -----------------------
# src/obs implements the registry itself; sim/residual_probe.cpp takes an
# injected registry (tests pass their own), so the enabled() gate lives at
# its call sites.
while IFS=: read -r file line _; do
  case "$file" in
    src/obs/*|src/sim/residual_probe.cpp) continue ;;
  esac
  start=$((line > 10 ? line - 10 : 1))
  if ! sed -n "${start},${line}p" "$file" | grep -q 'obs::enabled()'; then
    note "$file:$line: obs telemetry call not guarded by obs::enabled()"
  fi
done < <(grep -rnE 'obs::MetricsRegistry::instance\(\)|obs::record_prediction_residual\(' \
         src --include='*.cpp' --include='*.hpp')

if [ "$fail" -ne 0 ]; then
  echo "check_invariants: FAILED" >&2
  exit 1
fi
echo "check_invariants: OK"
