#!/usr/bin/env bash
# Repo-wide invariant lint. Cheap textual checks for conventions the compiler
# cannot enforce; run by CI (repo-lint job) and `ctest -R repo_invariants`.
#
#   1. Every workspace `ws.take(...)` is preceded by a `ws.reserve(...)` (or a
#      chained take) a few lines above in the same kernel body — take() after
#      an unsized arena is a hard error at runtime.
#   2. No naked new/delete in src/: ownership goes through containers and
#      smart pointers. Placement-new (`::new (`) and `= delete` are fine.
#   3. Metrics/residual telemetry is guarded: any obs::MetricsRegistry /
#      obs::record_prediction_residual call outside src/obs/ sits within a
#      few lines of an obs::enabled() check, so disabled builds pay nothing.
#   4. The flight recorder's crash-dump path (between the SIGNAL-SAFE DUMP
#      PATH markers in src/obs/flight_recorder.cpp) stays async-signal-safe:
#      no allocation, stdio, locks, exceptions, or std containers.
#   5. perf_event_open has exactly one call site — the RAII-wrapped
#      open_event() in src/obs/profile/perf_counters.cpp — so every counter
#      fd is owned by a PerfFd and closed on scope exit.
#   6. Every struct in the binary sample-store format header
#      (src/collect/store/format.hpp) carries an is_trivially_copyable
#      static_assert — the store does raw-byte I/O on these layouts, and a
#      drifted struct (vtable, std::string member) would corrupt shards
#      silently.
#   7. Every `switch` over OpKind in src/ is exhaustive (no `default:`), so
#      -Wswitch flags every site that needs updating when a new op kind is
#      added instead of a default silently swallowing it.
#   8. Every Pass subclass in src/analysis/passes.cpp is registered in
#      default_passes() and has at least one adversarial corpus case (a
#      CorpusTest entry whose diagnostic id carries the pass's category
#      prefix) — an unregistered pass silently never runs, and an untested
#      one has no regression tripwire.
set -u

cd "$(dirname "$0")/.."
fail=0

note() {
  echo "invariant violation: $1" >&2
  fail=1
}

# --- 1. ws.take() must follow ws.reserve() --------------------------------
while IFS=: read -r file line _; do
  start=$((line > 8 ? line - 8 : 1))
  if ! sed -n "${start},$((line - 1))p" "$file" \
      | grep -qE 'ws\.(reserve|take)\('; then
    note "$file:$line: ws.take() without a ws.reserve() just above"
  fi
done < <(grep -rnE 'ws\.take\(' src --include='*.cpp' --include='*.hpp')

# --- 2. no naked new/delete in src/ ---------------------------------------
# Word-boundary matches; placement-new spells `::new (`, deleted special
# members spell `= delete`, and the obs layer's leaky singletons spell
# `static T* x = new T` (deliberately never destroyed so worker threads can
# record during static teardown) — all excluded. Comments mentioning the
# words are excluded by stripping `//` tails first.
while IFS=: read -r file line text; do
  code="${text%%//*}"
  case "$code" in
    *'::new ('*|*'= delete'*) continue ;;
  esac
  if echo "$code" | grep -qE 'static [[:alnum:]_:]+\* [[:alnum:]_]+ = new '; then
    continue
  fi
  if echo "$code" | grep -qE '(^|[^_[:alnum:]:>])(new|delete)([[:space:]]|\[|$)'; then
    note "$file:$line: naked new/delete (use containers or smart pointers)"
  fi
done < <(grep -rnE '(^|[^_[:alnum:]:>])(new|delete)([[:space:]]|\[)' \
         src --include='*.cpp' --include='*.hpp')

# --- 3. obs telemetry must be behind obs::enabled() -----------------------
# src/obs implements the registry itself; sim/residual_probe.cpp takes an
# injected registry (tests pass their own), so the enabled() gate lives at
# its call sites.
while IFS=: read -r file line _; do
  case "$file" in
    src/obs/*|src/sim/residual_probe.cpp) continue ;;
  esac
  start=$((line > 10 ? line - 10 : 1))
  if ! sed -n "${start},${line}p" "$file" | grep -q 'obs::enabled()'; then
    note "$file:$line: obs telemetry call not guarded by obs::enabled()"
  fi
done < <(grep -rnE 'obs::MetricsRegistry::instance\(\)|obs::record_prediction_residual\(' \
         src --include='*.cpp' --include='*.hpp')

# --- 4. flight-recorder dump path stays async-signal-safe -----------------
# Extract the marked region and reject tokens that allocate, buffer, lock,
# or throw. The markers themselves are load-bearing: if either disappears,
# the extraction is empty/unbounded and we flag that too.
fr=src/obs/flight_recorder.cpp
if [ -f "$fr" ]; then
  begin_count=$(grep -c 'SIGNAL-SAFE DUMP PATH BEGIN' "$fr")
  end_count=$(grep -c 'SIGNAL-SAFE DUMP PATH END' "$fr")
  if [ "$begin_count" -ne 1 ] || [ "$end_count" -ne 1 ]; then
    note "$fr: expected exactly one SIGNAL-SAFE DUMP PATH BEGIN/END marker pair"
  else
    region=$(sed -n '/SIGNAL-SAFE DUMP PATH BEGIN/,/SIGNAL-SAFE DUMP PATH END/p' "$fr")
    # Strip // comment tails so prose mentioning forbidden names is fine.
    code=$(echo "$region" | sed 's,//.*$,,')
    unsafe='malloc|calloc|realloc|free\(|fopen|fprintf|printf|snprintf|sprintf|fwrite|fputs|puts\(|std::string|std::vector|std::map|std::mutex|lock_guard|unique_lock|throw |iostream|std::cout|std::cerr|localtime|gmtime|strftime|getenv'
    if echo "$code" | grep -nE "$unsafe" >/dev/null; then
      echo "$code" | grep -nE "$unsafe" | while IFS= read -r hit; do
        note "$fr (signal-safe dump path): forbidden call: $hit"
      done
      fail=1
    fi
  fi
else
  note "$fr missing (flight recorder removed without updating lints?)"
fi

# --- 5. perf_event_open only via the RAII wrapper -------------------------
# All counter fds must be owned by PerfFd; one syscall site keeps that
# auditable. Comments are stripped, so doc references elsewhere are fine.
while IFS=: read -r file line text; do
  code="${text%%//*}"
  echo "$code" | grep -q 'perf_event_open' || continue
  if [ "$file" != "src/obs/profile/perf_counters.cpp" ]; then
    note "$file:$line: perf_event_open outside the PerfFd wrapper in perf_counters.cpp"
  fi
done < <(grep -rn 'perf_event_open' src tools bench tests \
         --include='*.cpp' --include='*.hpp' 2>/dev/null)
sites=$(grep -c 'SYS_perf_event_open' src/obs/profile/perf_counters.cpp 2>/dev/null || echo 0)
if [ "$sites" -ne 1 ]; then
  note "expected exactly one SYS_perf_event_open call site in perf_counters.cpp, found $sites"
fi

# --- 6. store format structs stay trivially copyable ----------------------
# Raw-byte I/O structs must assert trivial copyability next to their
# definition; count `struct X {` definitions and static_asserts in the
# format header and require one assert per struct.
fmt=src/collect/store/format.hpp
if [ -f "$fmt" ]; then
  structs=$(grep -cE '^struct [A-Za-z_]+ \{' "$fmt")
  asserts=$(grep -c 'is_trivially_copyable' "$fmt")
  if [ "$structs" -eq 0 ]; then
    note "$fmt: no struct definitions found (format moved without updating lints?)"
  elif [ "$asserts" -lt "$structs" ]; then
    note "$fmt: $structs raw-I/O structs but only $asserts is_trivially_copyable static_asserts"
  fi
else
  note "$fmt missing (sample store removed without updating lints?)"
fi

# --- 7. OpKind switches must be exhaustive --------------------------------
# Brace-match each switch body; a body that cases OpKind:: values and also
# carries a `default:` label defeats -Wswitch for every future op kind.
while IFS=: read -r file line; do
  note "$file:$line: switch over OpKind has a default: (spell out every case so -Wswitch works)"
done < <(find src \( -name '*.cpp' -o -name '*.hpp' \) -print0 \
  | xargs -0 awk '
    FNR == 1 { depth = 0; nsw = 0 }
    {
      line = $0
      sub(/\/\/.*/, "", line)
      if (line ~ /switch[[:space:]]*\(/) {
        nsw++
        sw_depth[nsw] = depth
        sw_line[nsw] = FNR
        sw_file[nsw] = FILENAME
        sw_opkind[nsw] = 0
        sw_default[nsw] = 0
      }
      if (nsw > 0) {
        if (line ~ /case OpKind::/) sw_opkind[nsw] = 1
        if (line ~ /(^|[[:space:];{])default[[:space:]]*:/) sw_default[nsw] = 1
      }
      n = length(line)
      for (i = 1; i <= n; i++) {
        c = substr(line, i, 1)
        if (c == "{") depth++
        else if (c == "}") {
          depth--
          if (nsw > 0 && depth == sw_depth[nsw]) {
            if (sw_opkind[nsw] && sw_default[nsw])
              printf "%s:%d\n", sw_file[nsw], sw_line[nsw]
            nsw--
          }
        }
      }
    }')

# --- 8. every analysis pass is registered and corpus-covered --------------
# Pass names are diagnostic-id category prefixes ("<pass>.<finding>"); the
# corpus mapping is the CorpusTest instantiation in tests/analysis_test.cpp.
passes_cpp=src/analysis/passes.cpp
corpus_test=tests/analysis_test.cpp
if [ -f "$passes_cpp" ] && [ -f "$corpus_test" ]; then
  corpus_block=$(sed -n '/INSTANTIATE_TEST_SUITE_P(/,/^TEST/p' "$corpus_test")
  while IFS= read -r cls; do
    if ! grep -q "make_unique<${cls}>" "$passes_cpp"; then
      note "$passes_cpp: ${cls} is not registered in default_passes()"
    fi
  done < <(grep -oE 'class [A-Za-z_]+Pass' "$passes_cpp" | awk '{print $2}')
  while IFS= read -r pname; do
    if ! echo "$corpus_block" | grep -q "\"${pname}\."; then
      note "$corpus_test: no lint-corpus case exercises the '${pname}' pass (add a CorpusTest entry with a ${pname}.* id)"
    fi
  done < <(grep -oE 'name\(\) const override \{ return "[a-z_]+";' \
           "$passes_cpp" | grep -oE '"[a-z_]+"' | tr -d '"')
else
  note "analysis pass sources missing (passes.cpp or analysis_test.cpp moved without updating lints?)"
fi

if [ "$fail" -ne 0 ]; then
  echo "check_invariants: FAILED" >&2
  exit 1
fi
echo "check_invariants: OK"
