# Adversarial lint corpus: each graph in CASES must fail `convmeter lint`
# with a nonzero exit code AND report its expected diagnostic id; the clean
# graph must pass strictly. The memory-planner cases below exercise
# `lint --memory` budgets, note-severity planner diagnostics, and the
# `memplan` subcommand end to end.
set(CASES
  "cycle.txt=dataflow.cycle"
  "dangling.txt=dataflow.dangling_edge"
  "shape_mismatch.txt=shapes.contract"
  "illegal_fusion.txt=fusion.use_after_move"
  "workspace_bound.txt=workspace.over_budget"
  "duplicate_name.txt=structure.duplicate_name"
  "dead_op.txt=reachability.dead_op"
  "bad_attrs.txt=attrs.groups"
  "attn_heads.txt=attrs.groups"
  "attn_nonpositive.txt=attrs.domain")

foreach(case ${CASES})
  string(REPLACE "=" ";" parts ${case})
  list(GET parts 0 file)
  list(GET parts 1 expected_id)
  execute_process(
    COMMAND ${CONVMETER} lint --graph ${CORPUS}/${file} --json 1
    RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
  if(rc EQUAL 0)
    message(FATAL_ERROR "lint unexpectedly passed on ${file}:\n${out}")
  endif()
  if(NOT out MATCHES "\"${expected_id}\"")
    message(FATAL_ERROR
      "lint on ${file} did not report ${expected_id}:\n${out}\n${err}")
  endif()
endforeach()

execute_process(
  COMMAND ${CONVMETER} lint --graph ${CORPUS}/clean.txt --strict 1
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "lint failed on clean.txt (${rc}):\n${out}\n${err}")
endif()

# ---- Memory-planner corpus ---------------------------------------------
# over_budget.txt is only an error once a budget is in scope: 1 MiB cannot
# hold a 224x224 conv net, 256 MiB holds it comfortably.
execute_process(
  COMMAND ${CONVMETER} lint --graph ${CORPUS}/over_budget.txt
          --memory 1 --budget-mb 1 --json 1
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(rc EQUAL 0)
  message(FATAL_ERROR "lint --memory passed over_budget.txt at 1 MiB:\n${out}")
endif()
if(NOT out MATCHES "\"memplan.over_budget\"")
  message(FATAL_ERROR
    "lint on over_budget.txt did not report memplan.over_budget:\n${out}\n${err}")
endif()
execute_process(
  COMMAND ${CONVMETER} lint --graph ${CORPUS}/over_budget.txt
          --memory 1 --budget-mb 256
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR
    "lint --memory failed over_budget.txt at 256 MiB (${rc}):\n${out}\n${err}")
endif()

# Note-severity planner diagnostics: lint stays green (exit 0) but must
# surface the id once notes are requested.
execute_process(
  COMMAND ${CONVMETER} lint --graph ${CORPUS}/reuse.txt --notes 1 --json 1
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "lint failed on reuse.txt (${rc}):\n${out}\n${err}")
endif()
if(NOT out MATCHES "\"memplan.reuse\"")
  message(FATAL_ERROR "lint on reuse.txt did not report memplan.reuse:\n${out}")
endif()
execute_process(
  COMMAND ${CONVMETER} lint --graph ${CORPUS}/train_pinned.txt
          --training 1 --notes 1 --json 1
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR
    "lint failed on train_pinned.txt (${rc}):\n${out}\n${err}")
endif()
if(NOT out MATCHES "\"liveness.pinned\"")
  message(FATAL_ERROR
    "lint on train_pinned.txt did not report liveness.pinned:\n${out}")
endif()

# Warning-severity: training lint on a stochastic graph passes by default
# but fails under --strict 1, reporting determinism.stochastic.
execute_process(
  COMMAND ${CONVMETER} lint --graph ${CORPUS}/determinism.txt --training 1
          --strict 1 --notes 1 --json 1
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(rc EQUAL 0)
  message(FATAL_ERROR
    "lint --strict passed the stochastic training graph:\n${out}")
endif()
if(NOT out MATCHES "\"determinism.stochastic\"")
  message(FATAL_ERROR
    "lint on determinism.txt did not report determinism.stochastic:\n${out}")
endif()
execute_process(
  COMMAND ${CONVMETER} lint --graph ${CORPUS}/determinism.txt --training 1
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR
    "non-strict lint failed on determinism.txt (${rc}):\n${out}\n${err}")
endif()

# ---- memplan subcommand -------------------------------------------------
# Text and JSON renderers, the training plan, and the budget exit code.
execute_process(
  COMMAND ${CONVMETER} memplan --graph ${CORPUS}/clean.txt --image 64
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0 OR NOT out MATCHES "peak")
  message(FATAL_ERROR "memplan text render failed (${rc}):\n${out}\n${err}")
endif()
execute_process(
  COMMAND ${CONVMETER} memplan --graph ${CORPUS}/clean.txt --image 64 --json 1
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0 OR NOT out MATCHES "\"peak_bytes\"")
  message(FATAL_ERROR "memplan JSON render failed (${rc}):\n${out}\n${err}")
endif()
execute_process(
  COMMAND ${CONVMETER} memplan --graph ${CORPUS}/clean.txt --image 64
          --training 1
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "memplan --training failed (${rc}):\n${out}\n${err}")
endif()
execute_process(
  COMMAND ${CONVMETER} memplan --graph ${CORPUS}/over_budget.txt
          --budget-mb 1
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(rc EQUAL 0)
  message(FATAL_ERROR "memplan passed an over-budget plan:\n${out}")
endif()
if(NOT err MATCHES "over budget")
  message(FATAL_ERROR "memplan over-budget message missing:\n${out}\n${err}")
endif()
