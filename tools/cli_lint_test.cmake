# Adversarial lint corpus: each graph must fail `convmeter lint` with a
# nonzero exit code AND report its expected diagnostic id; the clean graph
# must pass strictly.
set(CASES
  "cycle.txt=dataflow.cycle"
  "dangling.txt=dataflow.dangling_edge"
  "shape_mismatch.txt=shapes.contract"
  "illegal_fusion.txt=fusion.use_after_move"
  "workspace_bound.txt=workspace.over_budget"
  "duplicate_name.txt=structure.duplicate_name"
  "dead_op.txt=reachability.dead_op"
  "bad_attrs.txt=attrs.groups"
  "attn_heads.txt=attrs.groups"
  "attn_nonpositive.txt=attrs.domain")

foreach(case ${CASES})
  string(REPLACE "=" ";" parts ${case})
  list(GET parts 0 file)
  list(GET parts 1 expected_id)
  execute_process(
    COMMAND ${CONVMETER} lint --graph ${CORPUS}/${file} --json 1
    RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
  if(rc EQUAL 0)
    message(FATAL_ERROR "lint unexpectedly passed on ${file}:\n${out}")
  endif()
  if(NOT out MATCHES "\"${expected_id}\"")
    message(FATAL_ERROR
      "lint on ${file} did not report ${expected_id}:\n${out}\n${err}")
  endif()
endforeach()

execute_process(
  COMMAND ${CONVMETER} lint --graph ${CORPUS}/clean.txt --strict 1
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "lint failed on clean.txt (${rc}):\n${out}\n${err}")
endif()
