# Checkpoint kill/resume workflow: a campaign killed after its first
# checkpoint flush (--abort-after, the engine's crash-injection hook) must,
# on --resume, finish with output byte-identical to an uninterrupted run.
file(MAKE_DIRECTORY ${WORKDIR})
function(run out_var)
  execute_process(COMMAND ${ARGN} RESULT_VARIABLE rc OUTPUT_VARIABLE out
                  ERROR_VARIABLE err)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "command failed (${rc}): ${ARGN}\n${out}\n${err}")
  endif()
  set(${out_var} "${out}" PARENT_SCOPE)
endfunction()

set(SWEEP --models alexnet,resnet18,squeezenet1_1 --images 64
    --batches 1,16 --reps 2)

run(out ${CONVMETER} campaign --out ${WORKDIR}/clean.cms --format bin ${SWEEP})

# First attempt dies after one checkpoint flush; the journal keeps the
# durable prefix.
execute_process(COMMAND ${CONVMETER} campaign --out ${WORKDIR}/resumed.cms
                --format bin --checkpoint ${WORKDIR}/journal.cms
                --interval 2 --abort-after 1 ${SWEEP}
                RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(rc EQUAL 0)
  message(FATAL_ERROR "--abort-after 1 did not abort the campaign")
endif()
if(NOT err MATCHES "aborted")
  message(FATAL_ERROR "abort did not explain itself:\n${err}")
endif()
if(NOT EXISTS ${WORKDIR}/journal.cms)
  message(FATAL_ERROR "aborted campaign left no checkpoint journal")
endif()

# Resume continues from the journal and rewrites the full output.
run(out ${CONVMETER} campaign --out ${WORKDIR}/resumed.cms --format bin
    --checkpoint ${WORKDIR}/journal.cms --interval 2 --resume 1 ${SWEEP})
execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files
                ${WORKDIR}/clean.cms ${WORKDIR}/resumed.cms
                RESULT_VARIABLE same)
if(NOT same EQUAL 0)
  message(FATAL_ERROR "resumed campaign differs from the uninterrupted run")
endif()
