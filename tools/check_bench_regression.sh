#!/usr/bin/env bash
# Kernel throughput trajectory gate. The committed BENCH_kernels.json at the
# repo root records the BEST value ever measured for each tracked metric
# (packed-GEMM GFLOP/s single-thread and pool, resnet18 and vit_s_16 forward
# images/sec, self-attention GFLOP/s) — not merely the last run. A fresh
# report must stay within the tolerance of that best-ever value, so the gate
# catches slow drift that a last-run baseline would ratchet away: each run
# is compared against the highest point of the whole trajectory.
#
# Usage: check_bench_regression.sh [--update] <fresh.json> [baseline.json] [tolerance]
#
#   (gate)     check_bench_regression.sh BENCH_kernels.json
#   (improve)  check_bench_regression.sh --update fresh.json
#
# The tolerance (default 0.10 = 10%) is one-sided: improvements never fail.
# With --update, any metric where the fresh run beats the recorded best is
# folded into the baseline file (per-metric max, other fields untouched) so
# the improvement becomes the new floor once committed. CI runs the gate;
# --update is run locally after a deliberate optimisation and the updated
# baseline is committed with the change that earned it.
set -u

update=0
if [ "${1:-}" = "--update" ]; then
  update=1
  shift
fi

fresh="${1:-BENCH_kernels.json}"
baseline="${2:-$(dirname "$0")/../BENCH_kernels.json}"
tolerance="${3:-0.10}"

if [ ! -f "$fresh" ]; then
  echo "check_bench_regression: fresh report '$fresh' not found" >&2
  exit 1
fi
if [ ! -f "$baseline" ]; then
  echo "check_bench_regression: baseline '$baseline' not found" >&2
  exit 1
fi

python3 - "$fresh" "$baseline" "$tolerance" "$update" <<'PY'
import json
import sys

fresh_path, baseline_path = sys.argv[1], sys.argv[2]
tolerance, update = float(sys.argv[3]), int(sys.argv[4])
fresh = json.load(open(fresh_path))
baseline = json.load(open(baseline_path))

# Tracked trajectory metrics: higher is better for every one of them.
METRICS = [
    ("gemm_512", "single_thread_gflops"),
    ("gemm_512", "pool_gflops"),
    ("conv_forward", "images_per_sec"),
    ("vit_forward", "images_per_sec"),
    ("attention", "attention_gflops"),
]

failed = False
improved = []
for section, key in METRICS:
    try:
        base = float(baseline[section][key])
        now = float(fresh[section][key])
    except (KeyError, TypeError, ValueError) as exc:
        print(f"check_bench_regression: missing/invalid {section}.{key}: {exc}",
              file=sys.stderr)
        failed = True
        continue
    floor = base * (1.0 - tolerance)
    delta = (now - base) / base if base else 0.0
    status = "OK" if now >= floor else "REGRESSION"
    if now < floor:
        failed = True
    if now > base:
        improved.append((section, key, base, now))
        status = "BEST" if not update else "BEST (recorded)"
    print(f"  {section}.{key}: best-ever {base:.2f}, fresh {now:.2f} "
          f"({delta:+.1%}, floor {floor:.2f}) {status}")

if update and improved and not failed:
    # Fold the new bests into the committed trajectory file. Only the
    # improved metric values change; every other field of the baseline
    # (shape descriptors, metadata) is preserved as committed.
    for section, key, _base, now in improved:
        baseline[section][key] = round(now, 2)
    with open(baseline_path, "w") as out:
        json.dump(baseline, out, indent=2)
        out.write("\n")
    print(f"check_bench_regression: recorded {len(improved)} new best(s) "
          f"in {baseline_path} — commit it with the change that earned it")

if failed:
    print(f"check_bench_regression: FAILED (>{tolerance:.0%} regression "
          f"vs best-ever)", file=sys.stderr)
    sys.exit(1)
print("check_bench_regression: OK")
PY
