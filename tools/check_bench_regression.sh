#!/usr/bin/env bash
# Kernel throughput regression gate. Compares a freshly measured
# BENCH_kernels.json against the committed baseline at the repo root and
# fails if any tracked metric (packed-GEMM GFLOP/s single-thread and pool,
# resnet18 and vit_s_16 forward images/sec) regresses by more than the
# tolerance.
#
# Usage: check_bench_regression.sh <fresh.json> [baseline.json] [tolerance]
#
# The tolerance (default 0.10 = 10%) is one-sided: improvements never fail,
# and the committed baseline is only updated deliberately, so the gate
# compares against the best recorded run rather than drifting with noise.
set -u

fresh="${1:-BENCH_kernels.json}"
baseline="${2:-$(dirname "$0")/../BENCH_kernels.json}"
tolerance="${3:-0.10}"

if [ ! -f "$fresh" ]; then
  echo "check_bench_regression: fresh report '$fresh' not found" >&2
  exit 1
fi
if [ ! -f "$baseline" ]; then
  echo "check_bench_regression: baseline '$baseline' not found" >&2
  exit 1
fi

python3 - "$fresh" "$baseline" "$tolerance" <<'PY'
import json
import sys

fresh_path, baseline_path, tolerance = sys.argv[1], sys.argv[2], float(sys.argv[3])
fresh = json.load(open(fresh_path))
baseline = json.load(open(baseline_path))

METRICS = [
    ("gemm_512", "single_thread_gflops"),
    ("gemm_512", "pool_gflops"),
    ("conv_forward", "images_per_sec"),
    ("vit_forward", "images_per_sec"),
]

failed = False
for section, key in METRICS:
    try:
        base = float(baseline[section][key])
        now = float(fresh[section][key])
    except (KeyError, TypeError, ValueError) as exc:
        print(f"check_bench_regression: missing/invalid {section}.{key}: {exc}",
              file=sys.stderr)
        failed = True
        continue
    floor = base * (1.0 - tolerance)
    delta = (now - base) / base if base else 0.0
    status = "OK" if now >= floor else "REGRESSION"
    if now < floor:
        failed = True
    print(f"  {section}.{key}: baseline {base:.2f}, fresh {now:.2f} "
          f"({delta:+.1%}, floor {floor:.2f}) {status}")

if failed:
    print(f"check_bench_regression: FAILED (>{tolerance:.0%} regression)",
          file=sys.stderr)
    sys.exit(1)
print("check_bench_regression: OK")
PY
