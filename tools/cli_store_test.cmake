# Sharded-campaign workflow: the same sweep run whole and as two
# independent --shard i/N processes must produce byte-identical stores
# after `store merge`, and the CSV bridge must round-trip exactly.
file(MAKE_DIRECTORY ${WORKDIR})
function(run out_var)
  execute_process(COMMAND ${ARGN} RESULT_VARIABLE rc OUTPUT_VARIABLE out
                  ERROR_VARIABLE err)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "command failed (${rc}): ${ARGN}\n${out}\n${err}")
  endif()
  set(${out_var} "${out}" PARENT_SCOPE)
endfunction()

set(SWEEP --models alexnet,resnet18,squeezenet1_1 --images 64
    --batches 1,16 --reps 2)

# Whole campaign vs two shards merged.
run(out ${CONVMETER} campaign --out ${WORKDIR}/whole.cms --format bin ${SWEEP})
run(out ${CONVMETER} campaign --out ${WORKDIR}/s0.cms --format bin
    --shard 0/2 ${SWEEP})
run(out ${CONVMETER} campaign --out ${WORKDIR}/s1.cms --format bin
    --shard 1/2 ${SWEEP})
run(out ${CONVMETER} store merge --inputs ${WORKDIR}/s1.cms,${WORKDIR}/s0.cms
    --out ${WORKDIR}/merged.cms)
execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files
                ${WORKDIR}/whole.cms ${WORKDIR}/merged.cms
                RESULT_VARIABLE same)
if(NOT same EQUAL 0)
  message(FATAL_ERROR "merged shards differ from the unsharded campaign")
endif()

run(out ${CONVMETER} store info --store ${WORKDIR}/merged.cms)
if(NOT out MATCHES "records" OR NOT out MATCHES "12")
  message(FATAL_ERROR "store info did not report 12 records:\n${out}")
endif()

# CSV bridge: campaign CSV == export(import(campaign CSV)), bit for bit.
run(out ${CONVMETER} campaign --out ${WORKDIR}/direct.csv ${SWEEP})
run(out ${CONVMETER} store import --csv ${WORKDIR}/direct.csv
    --out ${WORKDIR}/imported.cms)
run(out ${CONVMETER} store export --store ${WORKDIR}/imported.cms
    --out ${WORKDIR}/roundtrip.csv)
execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files
                ${WORKDIR}/direct.csv ${WORKDIR}/roundtrip.csv
                RESULT_VARIABLE same)
if(NOT same EQUAL 0)
  message(FATAL_ERROR "CSV -> binary -> CSV round trip is not bit-identical")
endif()

# The binary store feeds fit and eval exactly like the CSV does.
run(out ${CONVMETER} fit --store ${WORKDIR}/merged.cms
    --out ${WORKDIR}/model_store.json)
run(out ${CONVMETER} fit --samples ${WORKDIR}/direct.csv
    --out ${WORKDIR}/model_csv.json)
execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files
                ${WORKDIR}/model_store.json ${WORKDIR}/model_csv.json
                RESULT_VARIABLE same)
if(NOT same EQUAL 0)
  message(FATAL_ERROR "store-backed fit differs from CSV-backed fit")
endif()
run(out ${CONVMETER} eval --store ${WORKDIR}/merged.cms)
if(NOT out MATCHES "pooled")
  message(FATAL_ERROR "store-backed eval did not print the pooled row:\n${out}")
endif()

# Overlapping shards must be refused, not deduplicated.
execute_process(COMMAND ${CONVMETER} store merge
                --inputs ${WORKDIR}/s0.cms,${WORKDIR}/s0.cms
                --out ${WORKDIR}/dup.cms
                RESULT_VARIABLE rc ERROR_VARIABLE err)
if(rc EQUAL 0)
  message(FATAL_ERROR "store merge accepted overlapping shards")
endif()
