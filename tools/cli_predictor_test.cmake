# End-to-end predictor-layer workflow: campaign -> fit a registered
# predictor to a versioned JSON model file -> reload it for predictions ->
# leave-one-ConvNet-out evaluation of the same samples.
file(MAKE_DIRECTORY ${WORKDIR})
function(run out_var)
  execute_process(COMMAND ${ARGN} RESULT_VARIABLE rc OUTPUT_VARIABLE out
                  ERROR_VARIABLE err)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "command failed (${rc}): ${ARGN}\n${out}\n${err}")
  endif()
  set(${out_var} "${out}" PARENT_SCOPE)
endfunction()

run(out ${CONVMETER} campaign --out ${WORKDIR}/samples.csv
    --models alexnet,resnet18,resnet50,vgg16 --images 64,128
    --batches 1,16,64 --reps 2)
run(out ${CONVMETER} fit --samples ${WORKDIR}/samples.csv
    --predictor convmeter-fwd-only --out ${WORKDIR}/model.json)
if(NOT EXISTS ${WORKDIR}/model.json)
  message(FATAL_ERROR "fit did not write ${WORKDIR}/model.json")
endif()
file(READ ${WORKDIR}/model.json model_text)
if(NOT model_text MATCHES "\"format\":\"convmeter-predictor\"")
  message(FATAL_ERROR "model file lacks the versioned envelope:\n"
          "${model_text}")
endif()
run(out ${CONVMETER} predict --model-file ${WORKDIR}/model.json
    --model mobilenet_v2 --image 224 --batch 32)
if(NOT out MATCHES "convmeter-fwd-only")
  message(FATAL_ERROR "predict did not report the loaded predictor:\n${out}")
endif()
run(out ${CONVMETER} eval --samples ${WORKDIR}/samples.csv
    --predictor convmeter-fwd-only)
if(NOT out MATCHES "pooled")
  message(FATAL_ERROR "eval did not print the pooled error row:\n${out}")
endif()

# A corrupted envelope must be rejected with a clear error.
file(WRITE ${WORKDIR}/bad.json "{\"format\": \"other\", \"version\": 1}")
execute_process(COMMAND ${CONVMETER} predict --model-file ${WORKDIR}/bad.json
                --model alexnet RESULT_VARIABLE rc ERROR_VARIABLE err)
if(rc EQUAL 0)
  message(FATAL_ERROR "predict accepted a malformed model file")
endif()

# Segmented (per-op-family) predictor round trip: fit streams from a mixed
# ConvNet + ViT campaign, the saved model file reloads for predictions, and
# refitting the same samples reproduces the model file byte for byte.
run(out ${CONVMETER} campaign --out ${WORKDIR}/mixed.csv
    --models alexnet,resnet18,resnet50,vgg16,vit_ti_16,vit_s_16
    --images 64,128 --batches 1,16,64 --reps 2)
run(out ${CONVMETER} fit --samples ${WORKDIR}/mixed.csv
    --predictor segmented --out ${WORKDIR}/segmented_a.json)
file(READ ${WORKDIR}/segmented_a.json seg_a)
if(NOT seg_a MATCHES "\"format\":\"convmeter-predictor\"")
  message(FATAL_ERROR "segmented model lacks the versioned envelope:\n"
          "${seg_a}")
endif()
if(NOT seg_a MATCHES "\"predictor\":\"segmented\"")
  message(FATAL_ERROR "segmented model file does not name its predictor:\n"
          "${seg_a}")
endif()
run(out ${CONVMETER} fit --samples ${WORKDIR}/mixed.csv
    --predictor segmented --out ${WORKDIR}/segmented_b.json)
file(READ ${WORKDIR}/segmented_b.json seg_b)
if(NOT seg_a STREQUAL seg_b)
  message(FATAL_ERROR "segmented fit is not bit-stable across runs:\n"
          "first:\n${seg_a}\nsecond:\n${seg_b}")
endif()
run(pred_1 ${CONVMETER} predict --model-file ${WORKDIR}/segmented_a.json
    --model vit_s_16 --image 128 --batch 16)
if(NOT pred_1 MATCHES "segmented")
  message(FATAL_ERROR "predict did not report the loaded predictor:\n"
          "${pred_1}")
endif()
run(pred_2 ${CONVMETER} predict --model-file ${WORKDIR}/segmented_b.json
    --model vit_s_16 --image 128 --batch 16)
if(NOT pred_1 STREQUAL pred_2)
  message(FATAL_ERROR "loaded segmented models disagree:\n"
          "${pred_1}\nvs\n${pred_2}")
endif()
run(out ${CONVMETER} eval --samples ${WORKDIR}/mixed.csv
    --predictor segmented)
if(NOT out MATCHES "pooled")
  message(FATAL_ERROR "segmented eval did not print the pooled row:\n${out}")
endif()
