// convmeter — command-line interface to the library.
//
//   convmeter list-models
//   convmeter metrics   --model resnet50 [--image 224] [--batch 64]
//   convmeter show      --model resnet50
//   convmeter campaign  --backend sim-gpu|sim-cpu|real --out samples.csv
//                       [--models a,b,c] [--images 32,64] [--batches 1,16]
//                       [--jobs N] [--training] [--nodes 1,2,4]
//   convmeter list-predictors
//   convmeter fit       --samples samples.csv --out model.json
//                       [--predictor NAME] [--training 1] [--phase NAME]
//   convmeter eval      --samples samples.csv [--predictor NAME]
//                       [--phase NAME]
//   convmeter predict   --model-file model.json --model x --image 224
//                       --batch 64 [--devices N --nodes M] [--dataset D]
//                       [--epochs E]
//   convmeter scalability --model-file model.json --model x --batch 64
//                       [--max-nodes 16] [--gpus-per-node 4]
//   convmeter trace     --model x --out trace.json [--batch 8] [--image N]
//                       [--device D] [--train 0|1]
//   convmeter stats     [--model x] [--batch N] [--image N] [--device D]
//                       [--json 1] [--out FILE] [--serve PORT]
//   convmeter profile   --model x [--model-file model.json] [--batch N]
//                       [--image N] [--reps N] [--device D] [--json 1]
//   convmeter lint      --model x | --graph FILE | --all 1 [--image N]
//                       [--batch N] [--training 1] [--notes 1] [--json 1]
//                       [--strict 1] [--budget-mb N] [--device D] [--memory 1]
//   convmeter memplan   --model x | --graph FILE [--image N] [--batch N]
//                       [--training 1] [--json 1] [--budget-mb N] [--device D]
//   convmeter tune      [--out tuning.json] [--shapes zoo|gemm|conv]
//                       [--trials N] [--jobs N]
//
// The campaign runs against any MeasurementBackend — the simulated devices
// or the real CPU executor (`--backend real`); fit, eval and predict work
// on any CSV in the documented sample format, so measurements from real
// hardware can be dropped in. `fit` writes a versioned JSON model file for
// any registered predictor family (see `list-predictors`), which `predict`
// and `scalability` reload. `trace` and `stats` run the *real* CPU
// executor with the observability layer enabled (see src/obs/). `lint`
// statically verifies graphs with the analysis layer (see src/analysis/)
// and exits nonzero when any error-severity finding exists; setting
// CONVMETER_PREFLIGHT=1 in the environment additionally verifies every
// graph right before the executor runs it.
#include <cstdlib>
#include <iostream>
#include <map>
#include <memory>
#include <optional>
#include <string>

#include "analysis/verifier.hpp"
#include "backend/backend.hpp"
#include "collect/campaign.hpp"
#include "collect/sample_stream.hpp"
#include "collect/store/store.hpp"
#include "common/error.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "common/units.hpp"
#include "core/convmeter.hpp"
#include "core/scalability.hpp"
#include "exec/executor.hpp"
#include "exec/thread_pool.hpp"
#include "exec/trainer.hpp"
#include "exec/tuning/autotune.hpp"
#include "exec/tuning/tuning.hpp"
#include "graph/dot.hpp"
#include "graph/serialize.hpp"
#include "metrics/metrics.hpp"
#include "models/zoo.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics_registry.hpp"
#include "obs/profile/session.hpp"
#include "obs/residuals.hpp"
#include "obs/stats_server.hpp"
#include "obs/trace.hpp"
#include "predict/evaluate.hpp"
#include "predict/predictors.hpp"
#include "predict/registry.hpp"
#include "sim/residual_probe.hpp"

#include <fstream>
#include <sstream>

namespace convmeter::cli {
namespace {

/// Minimal --key value argument map.
class Args {
 public:
  Args(int argc, char** argv, int first) {
    for (int i = first; i < argc; ++i) {
      std::string key = argv[i];
      CM_CHECK(starts_with(key, "--"), "expected --option, got '" + key + "'");
      key = key.substr(2);
      CM_CHECK(i + 1 < argc, "option --" + key + " needs a value");
      values_[key] = argv[++i];
    }
  }

  std::string require(const std::string& key) const {
    const auto it = values_.find(key);
    if (it == values_.end()) {
      throw InvalidArgument("missing required option --" + key);
    }
    return it->second;
  }

  std::string get(const std::string& key, const std::string& fallback) const {
    const auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }

  long long get_int(const std::string& key, long long fallback) const {
    const auto it = values_.find(key);
    return it == values_.end() ? fallback : parse_int(it->second);
  }

  bool has(const std::string& key) const { return values_.count(key) > 0; }

 private:
  std::map<std::string, std::string> values_;
};

int cmd_list_models() {
  for (const auto& name : models::available_models()) {
    std::cout << name << '\n';
  }
  return 0;
}

int cmd_metrics(const Args& args) {
  const std::string name = args.require("model");
  const Graph g = models::build(name);
  const auto image = args.get_int("image", models::default_image_size(name));
  const auto batch = args.get_int("batch", 1);
  const GraphMetrics m = compute_metrics(
      g, Shape::nchw(batch, g.input_channels(), image, image));
  ConsoleTable t({"Metric", "Value"}, {Align::kLeft, Align::kRight});
  t.add_row({"model", name});
  t.add_row({"image", std::to_string(image)});
  t.add_row({"batch", std::to_string(batch)});
  t.add_row({"FLOPs (F)", format_flops(m.flops)});
  t.add_row({"conv inputs (I)", format_count(m.conv_inputs) + " elems"});
  t.add_row({"conv outputs (O)", format_count(m.conv_outputs) + " elems"});
  t.add_row({"weights (W)", format_count(m.weights)});
  t.add_row({"layers (L)", std::to_string(static_cast<long long>(m.layers))});
  t.add_row({"compute inputs", format_count(m.compute_inputs) + " elems"});
  t.add_row({"compute outputs", format_count(m.compute_outputs) + " elems"});
  t.print(std::cout);
  return 0;
}

int cmd_show(const Args& args) {
  std::cout << graph_to_text(models::build(args.require("model")));
  return 0;
}

int cmd_dot(const Args& args) {
  const std::string name = args.require("model");
  const Graph g = models::build(name);
  std::optional<ShapeMap> shapes;
  if (args.has("image")) {
    const auto image = args.get_int("image", 224);
    shapes = infer_shapes(
        g, Shape::nchw(args.get_int("batch", 1), g.input_channels(), image,
                       image));
  }
  if (args.has("out")) {
    save_dot(g, args.require("out"), shapes);
    std::cout << "wrote " << args.require("out") << '\n';
  } else {
    std::cout << graph_to_dot(g, shapes);
  }
  return 0;
}

std::vector<std::string> parse_model_list(const Args& args) {
  if (!args.has("models")) {
    return {"alexnet",       "vgg16",        "resnet18",
            "resnet50",      "squeezenet1_0", "mobilenet_v2",
            "efficientnet_b0", "densenet121", "regnet_x_8gf"};
  }
  return split(args.require("models"), ',');
}

std::vector<std::int64_t> parse_size_list(const Args& args,
                                          const std::string& key,
                                          std::vector<std::int64_t> fallback) {
  if (!args.has(key)) return fallback;
  std::vector<std::int64_t> sizes;
  for (const auto& v : split(args.require(key), ',')) {
    sizes.push_back(parse_int(v));
  }
  return sizes;
}

/// Pass-through sink that counts emissions. Campaigns stream straight into
/// the output sink with collect=false, so the count is otherwise lost.
class CountingSink : public SampleSink {
 public:
  explicit CountingSink(SampleSink& inner) : inner_(inner) {}
  void emit(const RuntimeSample& s) override {
    inner_.emit(s);
    ++count_;
  }
  void emit_indexed(const RuntimeSample& s, std::uint64_t point_index,
                    std::uint32_t repetition) override {
    inner_.emit_indexed(s, point_index, repetition);
    ++count_;
  }
  std::uint64_t count() const { return count_; }

 private:
  SampleSink& inner_;
  std::uint64_t count_ = 0;
};

int cmd_campaign(const Args& args) {
  // --backend picks the measurement backend (sim-gpu, sim-cpu, sim-edge,
  // real); --device stays as the legacy spelling for simulated presets.
  const std::string spec = args.get("backend", args.get("device", "a100"));
  const bool training = args.has("training");
  const std::unique_ptr<MeasurementBackend> backend =
      make_backend(spec, training);
  const std::string out = args.require("out");
  const std::string format = args.get("format", "csv");
  CM_CHECK(format == "csv" || format == "bin",
           "campaign --format must be csv or bin");

  CampaignOptions options;
  options.jobs = static_cast<int>(args.get_int("jobs", 1));
  options.verify = args.get_int("verify", 0) != 0;
  options.profile = args.get_int("profile", 0) != 0;
  if (options.profile) obs::set_enabled(true);
  if (args.has("shard")) {
    const auto parts = split(args.require("shard"), '/');
    CM_CHECK(parts.size() == 2, "--shard must be INDEX/COUNT, e.g. 0/4");
    options.shard_index = static_cast<int>(parse_int(parts[0]));
    options.shard_count = static_cast<int>(parse_int(parts[1]));
  }
  options.checkpoint = args.get("checkpoint", "");
  options.resume = args.get_int("resume", 0) != 0;
  options.checkpoint_interval =
      static_cast<int>(args.get_int("interval", 256));
  options.abort_after_flushes =
      static_cast<int>(args.get_int("abort-after", 0));
  // Samples stream straight into the output file; nothing is materialized,
  // so a million-point campaign runs in constant sample memory.
  options.collect = false;

  std::ofstream csv_file;
  std::unique_ptr<ShardWriter> writer;
  std::unique_ptr<SampleSink> sink;
  if (format == "bin") {
    writer = std::make_unique<ShardWriter>(out);
    sink = std::make_unique<ShardSampleSink>(*writer);
  } else {
    csv_file.open(out);
    CM_CHECK(csv_file.good(), "cannot open '" + out + "' for writing");
    sink = std::make_unique<CsvSampleSink>(csv_file);
  }
  CountingSink counting(*sink);
  options.sink = &counting;

  if (training) {
    TrainingSweep sweep;
    sweep.models = parse_model_list(args);
    sweep.image_sizes = parse_size_list(args, "images", {64, 128, 224});
    sweep.per_device_batch_sizes =
        parse_size_list(args, "batches", {16, 64, 256});
    sweep.node_counts.clear();
    for (const auto& n : split(args.get("nodes", "1"), ',')) {
      sweep.node_counts.push_back(static_cast<int>(parse_int(n)));
    }
    sweep.devices_per_node =
        static_cast<int>(args.get_int("gpus-per-node", 4));
    sweep.repetitions = static_cast<int>(args.get_int("reps", 3));
    run_training_campaign(*backend, sweep, options);
  } else {
    InferenceSweep sweep = InferenceSweep::paper_default(parse_model_list(args));
    sweep.image_sizes = parse_size_list(args, "images", sweep.image_sizes);
    sweep.batch_sizes = parse_size_list(args, "batches", sweep.batch_sizes);
    sweep.repetitions = static_cast<int>(args.get_int("reps", 3));
    run_inference_campaign(*backend, sweep, options);
  }
  if (writer != nullptr) writer->flush();
  std::cout << "wrote " << counting.count() << " samples to " << out;
  if (options.shard_count > 1) {
    std::cout << " (shard " << options.shard_index << "/"
              << options.shard_count << ")";
  }
  std::cout << '\n';
  return 0;
}

/// Sample input for fit/eval: a binary shard store (--store, streamed) or
/// a CSV file (--samples, materialized).
struct SampleSource {
  std::vector<RuntimeSample> owned;  ///< backing storage for the CSV path
  std::unique_ptr<SampleStream> stream;
  std::uint64_t count = 0;
};

SampleSource open_sample_source(const Args& args) {
  SampleSource src;
  if (args.has("store")) {
    auto stream = std::make_unique<StoreSampleStream>(args.require("store"));
    src.count = stream->record_count();
    src.stream = std::move(stream);
  } else {
    src.owned = load_samples(args.require("samples"));
    src.count = src.owned.size();
    src.stream = std::make_unique<VectorSampleStream>(src.owned);
  }
  return src;
}

/// Predictor construction knobs shared by fit and eval.
PredictorOptions predictor_options(const Args& args) {
  PredictorOptions options;
  if (args.has("phase")) {
    options.phase = phase_from_name(args.require("phase"));
  }
  return options;
}

/// Registry name selected by --predictor, defaulting to the ConvMeter
/// family matching the legacy --training switch.
std::string predictor_name(const Args& args) {
  return args.get("predictor",
                  args.has("training") ? "convmeter" : "convmeter-fwd-only");
}

int cmd_fit(const Args& args) {
  const SampleSource src = open_sample_source(args);
  const std::string name = predictor_name(args);
  const auto predictor = make_predictor(name, predictor_options(args));
  predictor->fit(*src.stream);
  const std::string out = args.require("out");
  save_predictor_file(*predictor, out);
  std::cout << "fitted '" << name << "' on " << src.count
            << " samples -> " << out << '\n';
  return 0;
}

int cmd_list_predictors() {
  ConsoleTable t({"Name", "Description"}, {Align::kLeft, Align::kLeft});
  for (const PredictorEntry& entry : PredictorRegistry::instance().entries()) {
    t.add_row({entry.name, entry.description});
  }
  t.print(std::cout);
  return 0;
}

int cmd_eval(const Args& args) {
  const SampleSource src = open_sample_source(args);
  const std::string name = predictor_name(args);
  LooOptions loo;
  // Store-backed evaluations default to streaming error accumulation (no
  // per-sample point vectors); CSV inputs keep the exact vector reports.
  loo.collect_points =
      args.get_int("collect-points", args.has("store") ? 0 : 1) != 0;
  const LooResult r =
      evaluate_loo(name, *src.stream, predictor_options(args), loo);
  ConsoleTable t({"ConvNet", "Samples", "R^2", "NRMSE", "MAPE"},
                 {Align::kLeft, Align::kRight, Align::kRight, Align::kRight,
                  Align::kRight});
  for (const GroupEvaluation& g : r.per_group) {
    t.add_row({g.group, std::to_string(g.errors.count),
               ConsoleTable::fmt(g.errors.r2, 3),
               ConsoleTable::fmt(g.errors.nrmse, 3),
               ConsoleTable::fmt(g.errors.mape, 3)});
  }
  t.add_row({"(pooled)", std::to_string(r.pooled.count),
             ConsoleTable::fmt(r.pooled.r2, 3),
             ConsoleTable::fmt(r.pooled.nrmse, 3),
             ConsoleTable::fmt(r.pooled.mape, 3)});
  std::cout << "leave-one-ConvNet-out, predictor '" << name << "':\n";
  t.print(std::cout);
  if (r.skipped > 0) {
    std::cout << r.skipped << " held-out sample(s) skipped (predictor "
              << "rejected them)\n";
  }
  return 0;
}

/// Model-file path: --model-file, or the legacy --coeffs spelling.
std::string model_file_path(const Args& args) {
  if (args.has("model-file")) return args.require("model-file");
  if (args.has("coeffs")) return args.require("coeffs");
  throw InvalidArgument("missing required option --model-file");
}

QueryPoint make_query(const Args& args) {
  const std::string name = args.require("model");
  const Graph g = models::build(name);
  QueryPoint q;
  q.model = name;
  q.image_size = args.get_int("image", models::default_image_size(name));
  q.metrics_b1 = compute_metrics_b1(g, q.image_size);
  q.per_device_batch = static_cast<double>(args.get_int("batch", 1));
  q.num_devices = static_cast<int>(args.get_int("devices", 1));
  q.num_nodes = static_cast<int>(args.get_int("nodes", 1));
  return q;
}

int cmd_predict(const Args& args) {
  const auto predictor = load_predictor_file(model_file_path(args));
  const QueryPoint q = make_query(args);
  const auto* cm = dynamic_cast<const ConvMeterPredictor*>(predictor.get());
  if (cm == nullptr) {
    // Any non-ConvMeter family predicts a single number for its target
    // phase (t_infer for the inference baselines).
    std::cout << "predicted " << phase_name(predictor->target()) << " ('"
              << predictor->name() << "'): "
              << format_seconds(predictor->predict(q.as_sample())) << '\n';
    return 0;
  }
  const ConvMeter& model = cm->model();
  const TrainPrediction p = model.predict_train_step(q);
  ConsoleTable t({"Phase", "Predicted"}, {Align::kLeft, Align::kRight});
  t.add_row({"forward", format_seconds(p.fwd)});
  t.add_row({"backward", format_seconds(p.bwd)});
  t.add_row({"gradient update", format_seconds(p.grad)});
  t.add_row({"bwd+grad (overlapped)", format_seconds(p.bwd_grad)});
  t.add_row({"training step", format_seconds(p.step)});
  if (args.has("dataset")) {
    const double dataset = static_cast<double>(args.get_int("dataset", 0));
    const double epoch = model.predict_epoch_seconds(q, dataset);
    t.add_row({"epoch", format_seconds(epoch)});
    const auto epochs = args.get_int("epochs", 0);
    if (epochs > 0) {
      t.add_row({"full training (" + std::to_string(epochs) + " epochs)",
                 format_seconds(epoch * static_cast<double>(epochs))});
    }
  }
  t.print(std::cout);
  return 0;
}

int cmd_scalability(const Args& args) {
  const auto predictor = load_predictor_file(model_file_path(args));
  const auto* cm = dynamic_cast<const ConvMeterPredictor*>(predictor.get());
  CM_CHECK(cm != nullptr,
           "scalability needs a 'convmeter' model file (fit --training 1)");
  const int gpus = static_cast<int>(args.get_int("gpus-per-node", 4));
  const ScalabilityAnalyzer analyzer(cm->model(), gpus);
  const QueryPoint q = make_query(args);
  const int max_nodes = static_cast<int>(args.get_int("max-nodes", 16));

  ConsoleTable t({"Nodes", "Step", "Throughput"});
  for (const ScalabilityPoint& p :
       analyzer.node_sweep(q.metrics_b1, q.per_device_batch, max_nodes)) {
    t.add_row({std::to_string(p.num_nodes), format_seconds(p.step_seconds),
               ConsoleTable::fmt(p.throughput, 0) + " img/s"});
  }
  t.print(std::cout);
  std::cout << "turning point: "
            << analyzer.turning_point(q.metrics_b1, q.per_device_batch,
                                      max_nodes)
            << " node(s)\n";
  return 0;
}

/// Runs one instrumented forward pass (and optionally a training step) of
/// `name`, recording spans and cost-model residuals into the global
/// observability state. Shared by `trace` and `stats`.
void run_instrumented_workload(const std::string& name, std::int64_t image,
                               std::int64_t batch, const DeviceSpec& device,
                               bool train) {
  const Graph g = models::build(name);
  const Shape shape = Shape::nchw(batch, g.input_channels(), image, image);

  Executor exec;
  const ExecutionResult run = exec.run_random(g, shape);

  // Per-layer residuals: what the roofline model predicts for `device` vs
  // what the CPU executor measured.
  std::vector<MeasuredLayerTime> measured;
  measured.reserve(run.layers.size());
  for (const LayerTiming& layer : run.layers) {
    measured.push_back({layer.node, layer.seconds});
  }
  record_layer_residuals(device, g, shape, measured);

  if (!train) return;
  // One full training step adds the nested fwd/bwd/grad-update spans.
  // All zoo architectures (ConvNets, ViTs, Mixers) have a CPU backward now.
  TrainerConfig config;
  Trainer trainer(g, config);
  Tensor input(shape);
  input.fill_random(1);
  std::vector<int> labels(static_cast<std::size_t>(batch));
  for (std::size_t i = 0; i < labels.size(); ++i) {
    labels[i] = static_cast<int>(i % 10);
  }
  trainer.step(input, labels);
}

int cmd_trace(const Args& args) {
  const std::string name = args.require("model");
  const std::string out = args.require("out");
  const auto image = args.get_int("image", models::default_image_size(name));
  const auto batch = args.get_int("batch", 8);
  const DeviceSpec device = device_by_name(args.get("device", "xeon_5318y"));
  const bool train = args.get_int("train", 1) != 0;

  obs::set_enabled(true);
  obs::Tracer::instance().clear();
  run_instrumented_workload(name, image, batch, device, train);

  obs::Tracer& tracer = obs::Tracer::instance();
  tracer.write_chrome_trace(out);
  const auto events = tracer.snapshot();
  std::cout << "wrote " << events.size() << " spans to " << out;
  if (tracer.dropped() > 0) {
    std::cout << " (" << tracer.dropped() << " dropped by ring buffers)";
  }
  std::cout << "\nopen in chrome://tracing or https://ui.perfetto.dev\n";
  return 0;
}

int cmd_stats(const Args& args) {
  const std::string name = args.get("model", "resnet18");
  const auto image = args.get_int("image", 64);
  const auto batch = args.get_int("batch", 4);
  const DeviceSpec device = device_by_name(args.get("device", "xeon_5318y"));
  const bool train = args.get_int("train", 1) != 0;

  obs::set_enabled(true);
  run_instrumented_workload(name, image, batch, device, train);
  obs::FlightRecorder::instance().refresh_metrics_snapshot();

  auto& registry = obs::MetricsRegistry::instance();
  if (args.has("serve")) {
    // Blocking OpenMetrics endpoint over the populated registry; scrape
    // with e.g. `curl http://127.0.0.1:PORT/metrics`.
    obs::StatsServerOptions options;
    options.port = static_cast<int>(args.get_int("serve", 9464));
    options.max_requests = args.get_int("max-requests", -1);
    serve_stats(registry, options, std::cout);
    return 0;
  }
  if (args.has("out")) {
    std::ofstream f(args.require("out"));
    CM_CHECK(static_cast<bool>(f), "cannot write " + args.require("out"));
    f << registry.to_json() << '\n';
    std::cout << "wrote metrics JSON to " << args.require("out") << '\n';
  } else if (args.get_int("json", 0) != 0) {
    std::cout << registry.to_json() << '\n';
  } else {
    registry.print_table(std::cout);
  }
  return 0;
}

int cmd_profile(const Args& args) {
  const std::string name = args.require("model");
  const Graph g = models::build(name);
  obs::ProfileOptions options;
  options.image = args.get_int("image", models::default_image_size(name));
  options.batch = args.get_int("batch", 1);
  options.threads = static_cast<std::size_t>(args.get_int("threads", 1));
  options.repetitions = static_cast<int>(args.get_int("reps", 3));
  options.device = args.get("device", "xeon_5318y");
  options.counters = args.get_int("counters", 1) != 0;

  // The per-layer "predicted" column dissects a fitted model file; without
  // one the roofline simulator provides the estimates.
  std::unique_ptr<Predictor> predictor;
  if (args.has("model-file") || args.has("coeffs")) {
    predictor = load_predictor_file(model_file_path(args));
  } else if (args.has("predictor")) {
    predictor = load_predictor_file(args.require("predictor"));
  }

  const obs::ProfileReport report =
      obs::profile_model(name, g, options, predictor.get());
  if (args.has("out")) {
    std::ofstream f(args.require("out"));
    CM_CHECK(static_cast<bool>(f), "cannot write " + args.require("out"));
    f << report.render_json() << '\n';
    std::cout << "wrote profile JSON to " << args.require("out") << '\n';
  }
  if (args.get_int("json", 0) != 0) {
    std::cout << report.render_json() << '\n';
  } else {
    std::cout << report.render_text(
        static_cast<std::size_t>(args.get_int("top", 15)));
  }
  return 0;
}

int cmd_lint(const Args& args) {
  analysis::VerifyOptions base;
  base.training = args.get_int("training", 0) != 0;
  base.include_notes = args.get_int("notes", 0) != 0;
  if (args.has("device")) {
    base.device_memory_bytes = static_cast<std::uint64_t>(
        device_by_name(args.require("device")).memory_bytes);
  }
  if (args.get_int("memory", 0) != 0) {
    // Whole-model static peak check (memplan.over_budget): the budget is
    // --budget-mb when given, otherwise the active device's memory.
    if (args.has("budget-mb")) {
      base.memory_budget_bytes =
          static_cast<std::uint64_t>(args.get_int("budget-mb", 1024)) << 20;
    } else if (base.device_memory_bytes != 0) {
      base.memory_budget_bytes = base.device_memory_bytes;
    } else {
      throw InvalidArgument(
          "lint --memory 1 needs --budget-mb N or --device NAME");
    }
  } else if (args.has("budget-mb")) {
    // Without --memory, --budget-mb keeps its original meaning: an
    // explicit per-thread workspace budget override.
    base.workspace_budget_bytes =
        static_cast<std::uint64_t>(args.get_int("budget-mb", 1024)) << 20;
  }
  const bool as_json = args.get_int("json", 0) != 0;
  const bool strict = args.get_int("strict", 0) != 0;

  struct Target {
    Graph graph;
    std::int64_t image;
  };
  std::vector<Target> targets;
  if (args.get_int("all", 0) != 0) {
    for (const auto& name : models::available_models()) {
      targets.push_back({models::build(name), models::default_image_size(name)});
    }
  } else if (args.has("model")) {
    const std::string name = args.require("model");
    targets.push_back({models::build(name), models::default_image_size(name)});
  } else if (args.has("graph")) {
    // Lenient load: lint exists precisely to diagnose files the strict
    // deserializer would reject.
    targets.push_back({load_graph_unchecked(args.require("graph")), 224});
  } else {
    throw InvalidArgument("lint needs --model NAME, --graph FILE, or --all 1");
  }

  const analysis::Verifier verifier;
  std::size_t errors = 0;
  std::size_t warnings = 0;
  for (const Target& target : targets) {
    analysis::VerifyOptions options = base;
    const auto image = args.get_int("image", target.image);
    const std::int64_t channels =
        target.graph.input_channels() > 0 ? target.graph.input_channels() : 3;
    options.input_shape =
        Shape::nchw(args.get_int("batch", 1), channels, image, image);
    const analysis::VerifyReport report =
        verifier.verify(target.graph, options);
    if (as_json) {
      std::cout << report.render_json() << '\n';
    } else {
      std::cout << report.render_text();
    }
    errors += report.sink.errors();
    warnings += report.sink.warnings();
  }
  if (errors > 0) return 1;
  if (strict && warnings > 0) return 1;
  return 0;
}

int cmd_memplan(const Args& args) {
  Graph g = [&] {
    if (args.has("model")) return models::build(args.require("model"));
    if (args.has("graph")) return load_graph(args.require("graph"));
    throw InvalidArgument("memplan needs --model NAME or --graph FILE");
  }();
  const std::int64_t image =
      args.get_int("image", args.has("model")
                                ? models::default_image_size(
                                      args.require("model"))
                                : 224);
  const std::int64_t channels =
      g.input_channels() > 0 ? g.input_channels() : 3;
  const Shape input_shape =
      Shape::nchw(args.get_int("batch", 1), channels, image, image);
  const bool training = args.get_int("training", 0) != 0;

  const analysis::MemPlan plan =
      analysis::plan_memory(g, input_shape, training);
  if (args.get_int("json", 0) != 0) {
    std::cout << analysis::render_memplan_json(g, plan) << '\n';
  } else {
    std::cout << analysis::render_memplan_text(g, plan);
  }

  // With a budget in scope (explicit or device-derived), a plan that does
  // not fit is a failure, mirroring `lint --memory`.
  std::uint64_t budget = 0;
  std::string budget_source;
  if (args.has("budget-mb")) {
    budget = static_cast<std::uint64_t>(args.get_int("budget-mb", 1024))
             << 20;
    budget_source = "--budget-mb";
  } else if (args.has("device")) {
    budget = static_cast<std::uint64_t>(
        device_by_name(args.require("device")).memory_bytes);
    budget_source = "device '" + args.require("device") + "'";
  }
  if (budget != 0 && plan.total_peak_bytes() > budget) {
    std::cerr << "over budget: static peak "
              << analysis::format_mib(plan.total_peak_bytes()) << " exceeds "
              << analysis::format_mib(budget) << " (" << budget_source
              << ")\n";
    return 1;
  }
  return 0;
}

int cmd_store(const std::string& verb, const Args& args) {
  if (verb == "info") {
    const StoreInfo info = store_info(args.require("store"));
    ConsoleTable table({"Field", "Value"});
    table.add_row({"shards", std::to_string(info.shards)});
    table.add_row({"records", std::to_string(info.records)});
    if (info.records > 0) {
      table.add_row({"points", std::to_string(info.first_point) + ".." +
                                   std::to_string(info.last_point)});
    }
    table.add_row({"models", join(info.models, ",")});
    table.print(std::cout);
    return 0;
  }
  if (verb == "merge") {
    const std::vector<std::string> inputs =
        split(args.require("inputs"), ',');
    const std::string out = args.require("out");
    merge_shards(inputs, out);
    const StoreInfo info = store_info(out);
    std::cout << "merged " << inputs.size() << " shards (" << info.records
              << " records) -> " << out << '\n';
    return 0;
  }
  if (verb == "import") {
    const std::string out = args.require("out");
    import_csv_to_shard(args.require("csv"), out);
    std::cout << "imported " << args.require("csv") << " -> " << out << '\n';
    return 0;
  }
  if (verb == "export") {
    const std::string out = args.require("out");
    export_store_to_csv(args.require("store"), out);
    std::cout << "exported " << args.require("store") << " -> " << out
              << '\n';
    return 0;
  }
  throw InvalidArgument("store verb must be info, merge, import, or export");
}

int cmd_tune(const Args& args) {
  tuning::AutotuneOptions opts;
  opts.shapes = args.get("shapes", "zoo");
  opts.trials = static_cast<int>(args.get_int("trials", 3));
  ThreadPool pool(static_cast<std::size_t>(args.get_int("jobs", 0)));
  std::cout << "device: " << tuning::device_fingerprint() << '\n'
            << "sweeping " << opts.shapes << " shapes, median of "
            << opts.trials << " runs per candidate...\n";
  std::string report;
  const tuning::TuningTable table = tuning::autotune(pool, opts, &report);
  std::cout << report;
  const std::string out = args.get("out", "tuning.json");
  tuning::save_tuning_file(table, out);
  std::cout << "wrote " << out
            << " (point CONVMETER_TUNING_FILE at it to use it)\n";
  return 0;
}

int usage() {
  std::cerr <<
      "usage: convmeter <command> [--option value ...]\n"
      "commands:\n"
      "  list-models\n"
      "  metrics     --model NAME [--image N] [--batch N]\n"
      "  show        --model NAME\n"
      "  dot         --model NAME [--image N [--batch N]] [--out FILE]\n"
      "  campaign    --out FILE [--backend sim-gpu|sim-cpu|sim-edge|real]\n"
      "              [--device a100|xeon_5318y|jetson_edge] [--jobs N]\n"
      "              [--models a,b,c] [--images 32,64] [--batches 1,16]\n"
      "              [--training --nodes 1,2,4] [--reps N] [--verify 1]\n"
      "              [--profile 1] [--format csv|bin] [--shard I/N]\n"
      "              [--checkpoint FILE [--resume 1] [--interval N]]\n"
      "  store       info   --store PATH\n"
      "  store       merge  --inputs a.cms,b.cms --out merged.cms\n"
      "  store       import --csv FILE --out shard.cms\n"
      "  store       export --store PATH --out FILE\n"
      "  list-predictors\n"
      "  fit         --samples FILE | --store PATH\n"
      "              --out model.json [--predictor NAME]\n"
      "              [--training 1] [--phase NAME]\n"
      "  eval        --samples FILE | --store PATH [--predictor NAME]\n"
      "              [--phase NAME] [--collect-points 0|1]\n"
      "  predict     --model-file model.json --model NAME [--image N]\n"
      "              [--batch N] [--devices N --nodes M]\n"
      "              [--dataset D --epochs E]\n"
      "  scalability --model-file model.json --model NAME [--batch N]\n"
      "              [--max-nodes N]\n"
      "  trace       --model NAME --out FILE [--batch N] [--image N]\n"
      "              [--device D] [--train 0|1]\n"
      "  stats       [--model NAME] [--batch N] [--image N] [--device D]\n"
      "              [--json 1] [--out FILE] [--serve PORT [--max-requests N]]\n"
      "  profile     --model NAME [--model-file model.json] [--image N]\n"
      "              [--batch N] [--reps N] [--threads N] [--device D]\n"
      "              [--counters 0|1] [--json 1] [--out FILE] [--top N]\n"
      "  lint        --model NAME | --graph FILE | --all 1 [--image N]\n"
      "              [--batch N] [--training 1] [--notes 1] [--json 1]\n"
      "              [--strict 1] [--budget-mb N] [--device D]\n"
      "              [--memory 1]   (static peak vs --budget-mb/--device)\n"
      "  memplan     --model NAME | --graph FILE [--image N] [--batch N]\n"
      "              [--training 1] [--json 1] [--budget-mb N] [--device D]\n"
      "  tune        [--out tuning.json] [--shapes zoo|gemm|conv]\n"
      "              [--trials N] [--jobs N]\n";
  return 2;
}

int run(int argc, char** argv) {
  if (argc < 2) return usage();
  // Opt-in executor pre-flight: every Executor::run verifies its graph
  // first, so defective graphs fail with full diagnostics instead of a
  // first-violation throw from validate().
  if (std::getenv("CONVMETER_PREFLIGHT") != nullptr) {
    analysis::install_executor_preflight();
  }
  // Crash flight recorder: CONVMETER_FLIGHT_RECORDER=/path/to/dump.json
  // arms the span ring and installs fatal-signal handlers that write a
  // Chrome-trace postmortem there (see src/obs/flight_recorder.hpp).
  if (const char* fr = std::getenv("CONVMETER_FLIGHT_RECORDER")) {
    if (fr[0] != '\0') obs::install_flight_recorder(fr);
  }
  const std::string cmd = argv[1];
  if (cmd == "store") {
    if (argc < 3) return usage();
    return cmd_store(argv[2], Args(argc, argv, 3));
  }
  const Args args(argc, argv, 2);
  if (cmd == "list-models") return cmd_list_models();
  if (cmd == "list-predictors") return cmd_list_predictors();
  if (cmd == "metrics") return cmd_metrics(args);
  if (cmd == "show") return cmd_show(args);
  if (cmd == "dot") return cmd_dot(args);
  if (cmd == "campaign") return cmd_campaign(args);
  if (cmd == "fit") return cmd_fit(args);
  if (cmd == "eval") return cmd_eval(args);
  if (cmd == "predict") return cmd_predict(args);
  if (cmd == "scalability") return cmd_scalability(args);
  if (cmd == "trace") return cmd_trace(args);
  if (cmd == "stats") return cmd_stats(args);
  if (cmd == "profile") return cmd_profile(args);
  if (cmd == "lint") return cmd_lint(args);
  if (cmd == "memplan") return cmd_memplan(args);
  if (cmd == "tune") return cmd_tune(args);
  std::cerr << "unknown command: " << cmd << "\n";
  return usage();
}

}  // namespace
}  // namespace convmeter::cli

int main(int argc, char** argv) {
  try {
    return convmeter::cli::run(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
}
