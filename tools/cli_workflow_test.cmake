# End-to-end CLI workflow: campaign -> fit -> predict -> scalability.
# `--coeffs` is the legacy spelling of `--model-file`; this test keeps it
# covered.
file(MAKE_DIRECTORY ${WORKDIR})
function(run)
  execute_process(COMMAND ${ARGV} RESULT_VARIABLE rc OUTPUT_VARIABLE out
                  ERROR_VARIABLE err)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "command failed (${rc}): ${ARGV}\n${out}\n${err}")
  endif()
endfunction()

run(${CONVMETER} campaign --out ${WORKDIR}/samples.csv
    --models alexnet,resnet18,resnet50 --training 1 --nodes 1,2 --reps 1)
run(${CONVMETER} fit --samples ${WORKDIR}/samples.csv
    --out ${WORKDIR}/model.json --training 1)
run(${CONVMETER} predict --coeffs ${WORKDIR}/model.json --model vgg16
    --image 128 --batch 64 --devices 8 --nodes 2 --dataset 1281167
    --epochs 90)
run(${CONVMETER} scalability --coeffs ${WORKDIR}/model.json --model vgg16
    --batch 64 --max-nodes 4)
