# End-to-end attribution-profiler workflow: campaign -> fit a forward model
# file -> profile resnet18 against it -> validate the JSON report schema,
# the measured-vs-wall accounting (within 5%), and that the text table's
# ranked residuals match the JSON report bit for bit.
file(MAKE_DIRECTORY ${WORKDIR})
function(run out_var)
  execute_process(COMMAND ${ARGN} RESULT_VARIABLE rc OUTPUT_VARIABLE out
                  ERROR_VARIABLE err)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "command failed (${rc}): ${ARGN}\n${out}\n${err}")
  endif()
  set(${out_var} "${out}" PARENT_SCOPE)
endfunction()

run(out ${CONVMETER} campaign --out ${WORKDIR}/samples.csv
    --models alexnet,resnet18,resnet50,vgg16 --images 64,128
    --batches 1,16,64 --reps 2)
run(out ${CONVMETER} fit --samples ${WORKDIR}/samples.csv
    --predictor convmeter-fwd-only --out ${WORKDIR}/model.json)

# One run produces both renderings of the same report: the text table on
# stdout and the JSON twin at --out.
run(text ${CONVMETER} profile --model resnet18 --image 64 --batch 1 --reps 2
    --model-file ${WORKDIR}/model.json --top 5
    --out ${WORKDIR}/profile.json)

if(NOT text MATCHES "attribution: linear-dissection via predictor 'convmeter-fwd-only'")
  message(FATAL_ERROR "profile did not dissect the fitted model:\n${text}")
endif()

# Measured column must account for the wall time to within 5% — the header
# prints the ratio the acceptance gate cares about.
if(NOT text MATCHES "\\(([0-9]+)\\.[0-9]+% of wall\\)")
  message(FATAL_ERROR "profile header lacks the wall accounting:\n${text}")
endif()
set(pct ${CMAKE_MATCH_1})
if(pct LESS 95 OR pct GREATER 105)
  message(FATAL_ERROR
          "per-layer measured sum is ${pct}% of wall (need 95..105):\n${text}")
endif()

if(NOT EXISTS ${WORKDIR}/profile.json)
  message(FATAL_ERROR "profile did not write ${WORKDIR}/profile.json")
endif()
file(READ ${WORKDIR}/profile.json report)
foreach(tag "\"format\":\"convmeter-profile\"" "\"version\":1"
        "\"attribution\":\"linear-dissection\"" "\"layers\":" "\"families\":"
        "\"counters\":" "\"wall_seconds\":" "\"layer_sum_seconds\":")
  string(FIND "${report}" "${tag}" tag_pos)
  if(tag_pos EQUAL -1)
    message(FATAL_ERROR "profile JSON lacks ${tag}:\n${report}")
  endif()
endforeach()

# The JSON layer array is the ranking; its leading residuals must appear in
# the text table verbatim (both renderers use shortest round-trip
# formatting) and in the same order.
string(REGEX MATCHALL "\"residual_seconds\":[^,}]*" residuals "${report}")
list(LENGTH residuals n_residuals)
if(n_residuals LESS 5)
  message(FATAL_ERROR "expected >= 5 layer rows, got ${n_residuals}")
endif()
set(prev_pos -1)
foreach(i RANGE 0 2)
  list(GET residuals ${i} entry)
  string(REPLACE "\"residual_seconds\":" "" value "${entry}")
  string(FIND "${text}" "${value}" pos)
  if(pos EQUAL -1)
    message(FATAL_ERROR
            "rank-${i} residual ${value} missing from the text table:\n${text}")
  endif()
  if(NOT pos GREATER prev_pos)
    message(FATAL_ERROR
            "text table ranks residual ${value} out of JSON order:\n${text}")
  endif()
  set(prev_pos ${pos})
endforeach()

# Bare profile (no model file) falls back to roofline estimates.
run(text ${CONVMETER} profile --model squeezenet1_1 --image 32 --reps 1)
if(NOT text MATCHES "attribution: roofline-only")
  message(FATAL_ERROR "bare profile should use roofline-only:\n${text}")
endif()
