# Serve-and-scrape test of `convmeter stats --serve`: run an instrumented
# workload, serve exactly one request on ${PORT}, scrape /metrics with
# file(DOWNLOAD), and check OpenMetrics conformance — TYPE declarations,
# the executor latency histogram with its p50/p95/p99 gauges, cumulative
# buckets ending in +Inf, and the terminating # EOF line.
file(MAKE_DIRECTORY ${WORKDIR})

# Background the server through sh (cmake cannot detach a process itself);
# --max-requests 1 makes it exit right after the scrape below.
execute_process(
  COMMAND sh -c "${CONVMETER} stats --model squeezenet1_1 --image 32 --batch 1 --train 0 --serve ${PORT} --max-requests 1 > ${WORKDIR}/serve.log 2>&1 &"
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "failed to launch the stats server (${rc})")
endif()

set(scraped FALSE)
foreach(attempt RANGE 1 50)
  file(DOWNLOAD "http://127.0.0.1:${PORT}/metrics" ${WORKDIR}/scrape.txt
       TIMEOUT 5 STATUS status)
  list(GET status 0 code)
  if(code EQUAL 0)
    set(scraped TRUE)
    break()
  endif()
  execute_process(COMMAND ${CMAKE_COMMAND} -E sleep 0.2)
endforeach()
if(NOT scraped)
  file(READ ${WORKDIR}/serve.log log)
  message(FATAL_ERROR "could not scrape 127.0.0.1:${PORT}/metrics\n${log}")
endif()

file(READ ${WORKDIR}/scrape.txt body)
foreach(needle
        "# TYPE convmeter_executor_run_seconds histogram"
        "convmeter_executor_run_seconds_bucket{le=\"+Inf\"}"
        "convmeter_executor_run_seconds_sum"
        "convmeter_executor_run_seconds_count"
        "# TYPE convmeter_executor_run_seconds_p50 gauge"
        "convmeter_executor_run_seconds_p95"
        "convmeter_executor_run_seconds_p99"
        "convmeter_executor_runs_total")
  string(FIND "${body}" "${needle}" pos)
  if(pos EQUAL -1)
    message(FATAL_ERROR "scrape lacks '${needle}':\n${body}")
  endif()
endforeach()
if(NOT body MATCHES "# EOF\n$")
  message(FATAL_ERROR "scrape does not end with # EOF:\n${body}")
endif()
