// Training-time estimator across batch sizes — including batch sizes that
// exceed the device memory, which ConvMeter can still predict (Sec. 4.3:
// "We can predict the runtime even for batch sizes that would exceed the
// capacity of the training device").
//
// The report answers: what per-GPU batch size maximizes throughput, when
// does memory run out, and what would a bigger-memory device buy us?
#include <iostream>

#include "backend/sim_backend.hpp"
#include "collect/campaign.hpp"
#include "common/table.hpp"
#include "common/units.hpp"
#include "core/convmeter.hpp"
#include "metrics/metrics.hpp"
#include "models/zoo.hpp"
#include "sim/cost_model.hpp"

using namespace convmeter;

int main() {
  const std::string target = "efficientnet_b0";
  constexpr std::int64_t kImage = 224;
  constexpr double kDatasetImages = 1.281e6;

  std::cout << "Training-time estimate for " << target << " @ " << kImage
            << "px on one A100-80GB (data-parallel single device)\n\n";

  // Fit on other models so the target is unseen.
  SimTrainingBackend sim(a100_80gb(), nvlink_hdr200_fabric());
  TrainingSweep sweep = TrainingSweep::paper_single_gpu(
      {"alexnet", "vgg16", "resnet18", "resnet50", "squeezenet1_0",
       "mobilenet_v2", "densenet121", "regnet_x_8gf"});
  sweep.repetitions = 2;
  const ConvMeter model =
      ConvMeter::fit_training(run_training_campaign(sim, sweep));

  const Graph graph = models::build(target);
  const GraphMetrics metrics = compute_metrics_b1(graph, kImage);
  const DeviceSpec device = a100_80gb();

  ConsoleTable table({"Batch", "Fits 80GB?", "Step", "Epoch", "Throughput",
                      "Memory est."});
  double best_fit_throughput = 0.0;
  double best_any_throughput = 0.0;
  std::int64_t best_fit_batch = 0;
  for (const std::int64_t batch : {8, 16, 32, 64, 128, 256, 512, 1024, 2048,
                                   4096}) {
    const Shape shape = Shape::nchw(batch, 3, kImage, kImage);
    const bool fits = fits_in_memory(device, graph, shape, /*training=*/true);
    QueryPoint q;
    q.metrics_b1 = metrics;
    q.per_device_batch = static_cast<double>(batch);
    const double step = model.predict_train_step(q).step;
    const double epoch = model.predict_epoch_seconds(q, kDatasetImages);
    const double throughput = model.predict_throughput(q);
    if (fits && throughput > best_fit_throughput) {
      best_fit_throughput = throughput;
      best_fit_batch = batch;
    }
    best_any_throughput = std::max(best_any_throughput, throughput);
    table.add_row(
        {std::to_string(batch), fits ? "yes" : "NO (simulated)",
         format_seconds(step), format_seconds(epoch),
         ConsoleTable::fmt(throughput, 0) + " img/s",
         format_bytes(memory_footprint_bytes(graph, shape, true))});
  }
  table.print(std::cout);

  std::cout << "\nBest in-memory batch size: " << best_fit_batch << " ("
            << ConsoleTable::fmt(best_fit_throughput, 0) << " img/s).\n";
  const double headroom =
      (best_any_throughput - best_fit_throughput) / best_fit_throughput;
  std::cout << "A device with more memory would buy at most "
            << ConsoleTable::fmt(100.0 * headroom, 1)
            << "% more throughput — the basis for a hardware-upgrade "
               "decision without owning the hardware.\n";
  return 0;
}
