// Infrastructure planner: "how many 4xA100 nodes should I rent to train
// this model?" — the paper's motivating use case (Sec. 1: choosing training
// parameters and computing infrastructure without running the workload).
//
// Fits ConvMeter on a distributed-training campaign, then reports, for a
// target model and dataset, the predicted epoch time / throughput over the
// node count, the scaling turning point, and a cost-efficiency view.
#include <iostream>

#include "backend/sim_backend.hpp"
#include "collect/campaign.hpp"
#include "common/table.hpp"
#include "common/units.hpp"
#include "core/scalability.hpp"
#include "metrics/metrics.hpp"
#include "models/zoo.hpp"

using namespace convmeter;

int main() {
  // The workload to plan for: ResNet-50 on an ImageNet-sized dataset.
  const std::string target = "resnet50";
  constexpr double kDatasetImages = 1.281e6;  // ImageNet-1k train split
  constexpr double kPerDeviceBatch = 64.0;
  constexpr std::int64_t kImage = 224;
  constexpr int kEpochs = 90;
  constexpr double kNodeHourCost = 12.0;  // USD per 4xA100 node-hour

  std::cout << "Infrastructure planning for " << target << " ("
            << kEpochs << " epochs over " << kDatasetImages / 1e6
            << "M images, batch " << kPerDeviceBatch << "/GPU)\n\n";

  // Tune ConvMeter on every zoo model except the target (it is "new").
  SimTrainingBackend sim(a100_80gb(), nvlink_hdr200_fabric());
  std::vector<std::string> fit_models = {
      "alexnet",       "vgg16",           "resnet18",        "resnet101",
      "squeezenet1_0", "mobilenet_v2",    "efficientnet_b0", "regnet_x_8gf",
      "densenet121",   "resnext50_32x4d"};
  TrainingSweep sweep = TrainingSweep::paper_distributed(fit_models);
  sweep.repetitions = 2;
  const ConvMeter model =
      ConvMeter::fit_training(run_training_campaign(sim, sweep));
  const ScalabilityAnalyzer analyzer(model, /*devices_per_node=*/4);

  const GraphMetrics metrics =
      compute_metrics_b1(models::build(target), kImage);

  ConsoleTable table({"Nodes", "GPUs", "Step", "Epoch", "Full training",
                      "Throughput", "Cost (USD)", "Scaling eff."});
  double throughput_1 = 0.0;
  for (const int nodes : {1, 2, 4, 8, 16, 32}) {
    QueryPoint q;
    q.metrics_b1 = metrics;
    q.per_device_batch = kPerDeviceBatch;
    q.num_nodes = nodes;
    q.num_devices = 4 * nodes;
    const double step = model.predict_train_step(q).step;
    const double epoch = model.predict_epoch_seconds(q, kDatasetImages);
    const double total = epoch * kEpochs;
    const double throughput = model.predict_throughput(q);
    if (nodes == 1) throughput_1 = throughput;
    const double eff = throughput / (throughput_1 * nodes);
    const double cost = total / 3600.0 * kNodeHourCost * nodes;
    table.add_row({std::to_string(nodes), std::to_string(4 * nodes),
                   format_seconds(step), format_seconds(epoch),
                   format_seconds(total),
                   ConsoleTable::fmt(throughput, 0) + " img/s",
                   ConsoleTable::fmt(cost, 0),
                   ConsoleTable::fmt(100.0 * eff, 1) + "%"});
  }
  table.print(std::cout);

  const int turning = analyzer.turning_point(metrics, kPerDeviceBatch, 32);
  std::cout << "\nRecommendation: scaling efficiency drops below the "
               "doubling threshold after "
            << turning << " node(s).\n";
  std::cout << "Pick the smallest node count whose total training time "
               "meets your deadline; beyond the turning point you mostly "
               "pay for communication.\n";
  return 0;
}
