// Predicted layer-stage profile: what a profiler would tell you about a
// model — without running the model. Uses the paper's block-wise
// prediction (Sec. 4.1.2) to price every residual stage of a ConvNet and
// prints a profile table plus the relative-time histogram, then checks the
// story against the device simulator.
#include <iostream>

#include "backend/sim_backend.hpp"
#include "collect/campaign.hpp"
#include "common/table.hpp"
#include "common/units.hpp"
#include "core/convmeter.hpp"
#include "graph/shape_inference.hpp"
#include "graph/subgraph.hpp"
#include "metrics/metrics.hpp"
#include "models/blocks.hpp"
#include "models/zoo.hpp"
#include "sim/cost_model.hpp"

using namespace convmeter;

int main() {
  const std::string target = "resnet50";
  constexpr std::int64_t kImage = 224;
  constexpr std::int64_t kBatch = 32;

  std::cout << "Predicted stage profile of " << target << " @ " << kImage
            << "px, batch " << kBatch << " (A100)\n\n";

  // Block-level predictor tuned on the paper's nine reference blocks —
  // the target model's own blocks are never measured.
  SimInferenceBackend sim(a100_80gb());
  std::vector<BlockCase> reference;
  for (const auto& nb : models::paper_blocks()) {
    if (nb.model == target) continue;  // keep the target unseen
    models::BlockExtraction ex = models::extract_paper_block(nb);
    reference.push_back(
        {nb.label, std::move(ex.block), std::move(ex.input_shape)});
  }
  const ConvMeter predictor = ConvMeter::fit_inference(run_block_campaign(
      sim, reference, {1, 4, 16, 64, 256}, 3, 0xb10c));

  const Graph model = models::build(target);
  const Shape input = Shape::nchw(kBatch, 3, kImage, kImage);
  const ShapeMap shapes = infer_shapes(model, input);

  // Profile unit: each residual block (layerX.Y), identified by prefix.
  struct Row {
    std::string name;
    double predicted;
    double simulated;
  };
  std::vector<Row> rows;
  double total_pred = 0.0;
  double total_sim = 0.0;
  for (int stage = 1; stage <= 4; ++stage) {
    for (int block = 0;; ++block) {
      const std::string prefix =
          "layer" + std::to_string(stage) + "." + std::to_string(block);
      double predicted = 0.0;
      double simulated = 0.0;
      try {
        const models::BlockExtraction ex =
            models::extract_named_block(model, prefix, input);
        QueryPoint q;
        q.metrics_b1 =
            compute_metrics(ex.block, ex.input_shape.with_batch(1));
        q.per_device_batch = static_cast<double>(kBatch);
        predicted = predictor.predict_inference(q);
        simulated = forward_time(sim.device(), ex.block, ex.input_shape);
      } catch (const InvalidArgument&) {
        break;  // no more blocks in this stage
      }
      rows.push_back({prefix, predicted, simulated});
      total_pred += predicted;
      total_sim += simulated;
    }
  }

  ConsoleTable table({"Block", "Predicted", "share", "Simulator", "bar"});
  for (const Row& r : rows) {
    const double share = r.predicted / total_pred;
    table.add_row({r.name, format_seconds(r.predicted),
                   ConsoleTable::fmt(100.0 * share, 1) + "%",
                   format_seconds(r.simulated),
                   std::string(static_cast<std::size_t>(60.0 * share), '#')});
  }
  table.print(std::cout);
  std::cout << "\nresidual blocks total: predicted "
            << format_seconds(total_pred) << ", simulator "
            << format_seconds(total_sim) << " (ratio "
            << ConsoleTable::fmt(total_pred / total_sim, 2) << "x)\n";
  std::cout << "A NAS or pruning tool reads this table to find where the "
               "time goes — no execution of " << target << " required.\n";
  return 0;
}
