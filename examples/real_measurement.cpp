// Real-measurement pipeline: no simulator anywhere. The real CPU executor
// provides wall-clock forward-pass times on THIS machine; ConvMeter is
// fitted on them and predicts a held-out architecture — the complete
// methodology of the paper, end to end, on genuine measurements.
//
// Configurations are kept small so the demo finishes in seconds; the same
// code scales to a full campaign by widening the sweep.
#include <iostream>
#include <vector>

#include "collect/sample.hpp"
#include "common/table.hpp"
#include "common/units.hpp"
#include "core/convmeter.hpp"
#include "exec/executor.hpp"
#include "metrics/metrics.hpp"
#include "models/zoo.hpp"

using namespace convmeter;

int main() {
  const std::vector<std::string> tuning_models = {
      "squeezenet1_1", "mobilenet_v3_small", "mobilenet_v2", "resnet18"};
  const std::string held_out = "squeezenet1_0";
  const std::vector<std::int64_t> images = {32, 64};
  const std::vector<std::int64_t> batches = {1, 2, 4};

  std::cout << "Fitting ConvMeter on REAL wall-clock CPU measurements "
               "(this machine), predicting " << held_out << "\n\n";

  Executor exec(0);
  std::vector<RuntimeSample> samples;
  for (const std::string& name : tuning_models) {
    const Graph g = models::build(name);
    for (const std::int64_t image : images) {
      const GraphMetrics m = compute_metrics_b1(g, image);
      for (const std::int64_t batch : batches) {
        const Shape shape = Shape::nchw(batch, 3, image, image);
        // Warm-up once, then take the median-ish of three runs.
        exec.run_random(g, shape);
        double best = 1e300;
        for (int rep = 0; rep < 3; ++rep) {
          best = std::min(best, exec.run_random(g, shape).total_seconds);
        }
        RuntimeSample s;
        s.model = name;
        s.device = "host-cpu";
        s.image_size = image;
        s.global_batch = batch;
        s.flops1 = m.flops;
        s.inputs1 = m.conv_inputs;
        s.outputs1 = m.conv_outputs;
        s.weights = m.weights;
        s.layers = m.layers;
        s.t_infer = best;
        samples.push_back(std::move(s));
        std::cout << "  measured " << name << " @" << image << "px b" << batch
                  << ": " << format_seconds(best) << "\n";
      }
    }
  }

  const ConvMeter model = ConvMeter::fit_inference(samples);
  std::cout << "\nfitted on " << samples.size()
            << " real measurements; predicting unseen " << held_out << ":\n\n";

  const Graph target = models::build(held_out);
  ConsoleTable table({"Config", "Predicted", "Measured", "Ratio"});
  for (const std::int64_t image : images) {
    const GraphMetrics m = compute_metrics_b1(target, image);
    for (const std::int64_t batch : batches) {
      QueryPoint q;
      q.metrics_b1 = m;
      q.per_device_batch = static_cast<double>(batch);
      const double predicted = model.predict_inference(q);
      const Shape shape = Shape::nchw(batch, 3, image, image);
      exec.run_random(target, shape);
      double measured = 1e300;
      for (int rep = 0; rep < 3; ++rep) {
        measured = std::min(measured, exec.run_random(target, shape).total_seconds);
      }
      table.add_row({std::to_string(image) + "px b" + std::to_string(batch),
                     format_seconds(predicted), format_seconds(measured),
                     ConsoleTable::fmt(predicted / measured, 2) + "x"});
    }
  }
  table.print(std::cout);
  std::cout << "\nEverything above ran real kernels — the simulator is only "
               "needed where the paper's hardware (A100 clusters) is not "
               "available.\n";
  return 0;
}
