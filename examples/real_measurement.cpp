// Real-measurement pipeline: no simulator anywhere. The real CPU backend
// provides wall-clock forward-pass times on THIS machine; the same campaign
// engine that drives the simulators collects them, ConvMeter is fitted on
// the result and predicts a held-out architecture — the complete methodology
// of the paper, end to end, on genuine measurements.
//
// Configurations are kept small so the demo finishes in seconds; the same
// code scales to a full campaign by widening the sweep.
#include <algorithm>
#include <iostream>
#include <vector>

#include "backend/real_backend.hpp"
#include "collect/campaign.hpp"
#include "common/table.hpp"
#include "common/units.hpp"
#include "core/convmeter.hpp"
#include "metrics/metrics.hpp"
#include "models/zoo.hpp"

using namespace convmeter;

int main() {
  const std::string held_out = "squeezenet1_0";
  const std::vector<std::int64_t> images = {32, 64};
  const std::vector<std::int64_t> batches = {1, 2, 4};

  std::cout << "Fitting ConvMeter on REAL wall-clock CPU measurements "
               "(this machine), predicting " << held_out << "\n\n";

  // The backend wraps the real Executor; the campaign sweeps it exactly as
  // it would sweep a simulated device.
  RealInferenceBackend backend(0);
  InferenceSweep sweep;
  sweep.models = {"squeezenet1_1", "mobilenet_v3_small", "mobilenet_v2",
                  "resnet18"};
  sweep.image_sizes = images;
  sweep.batch_sizes = batches;
  sweep.repetitions = 3;
  const auto samples = run_inference_campaign(backend, sweep);
  std::cout << "  campaign: " << samples.size() << " real measurements on "
            << backend.device().name << "\n";

  const ConvMeter model = ConvMeter::fit_inference(samples);
  std::cout << "\nfitted on " << samples.size()
            << " real measurements; predicting unseen " << held_out << ":\n\n";

  const Graph target = models::build(held_out);
  Rng rng(0xbea1);
  ConsoleTable table({"Config", "Predicted", "Measured", "Ratio"});
  for (const std::int64_t image : images) {
    const GraphMetrics m = compute_metrics_b1(target, image);
    for (const std::int64_t batch : batches) {
      QueryPoint q;
      q.metrics_b1 = m;
      q.per_device_batch = static_cast<double>(batch);
      const double predicted = model.predict_inference(q);
      const Shape shape = Shape::nchw(batch, 3, image, image);
      // Warm-up once, then take the best of three runs.
      backend.measure_inference(target, shape, rng);
      double measured = 1e300;
      for (int rep = 0; rep < 3; ++rep) {
        measured = std::min(
            measured, backend.measure_inference(target, shape, rng).seconds);
      }
      table.add_row({std::to_string(image) + "px b" + std::to_string(batch),
                     format_seconds(predicted), format_seconds(measured),
                     ConsoleTable::fmt(predicted / measured, 2) + "x"});
    }
  }
  table.print(std::cout);
  std::cout << "\nEverything above ran real kernels — the simulator is only "
               "needed where the paper's hardware (A100 clusters) is not "
               "available.\n";
  return 0;
}
