// NAS-style block search (the Sec. 4.1.2 use case): rank candidate
// convolution blocks by *predicted* latency without executing them.
//
// A block-level predictor is what hardware-aware NAS needs: thousands of
// candidate cells must be scored per search step, and running each one is
// far too slow. Here we enumerate a small design space of residual blocks
// (kernel size x width x grouped/depthwise) and rank the Pareto frontier
// of predicted-latency vs parameter count.
#include <algorithm>
#include <iostream>
#include <sstream>

#include "backend/sim_backend.hpp"
#include "collect/campaign.hpp"
#include "common/table.hpp"
#include "common/units.hpp"
#include "core/convmeter.hpp"
#include "metrics/metrics.hpp"
#include "models/blocks.hpp"
#include "models/zoo.hpp"

using namespace convmeter;

namespace {

/// One candidate cell in the design space.
struct Candidate {
  std::string name;
  Graph graph;
  GraphMetrics metrics;
  double predicted_ms = 0.0;
};

/// Builds a residual block: 1x1 reduce -> kxk (grouped) -> 1x1 expand.
Graph make_candidate(std::int64_t channels, std::int64_t width,
                     std::int64_t kernel, std::int64_t groups,
                     const std::string& name) {
  Graph g(name);
  NodeId x = g.input(channels);
  NodeId y = g.conv2d("reduce", x, Conv2dAttrs::square(channels, width, 1));
  y = g.batch_norm("bn1", y, width);
  y = g.activation("act1", y, ActKind::kReLU);
  y = g.conv2d("spatial", y,
               Conv2dAttrs::square(width, width, kernel, 1, (kernel - 1) / 2,
                                   groups));
  y = g.batch_norm("bn2", y, width);
  y = g.activation("act2", y, ActKind::kReLU);
  y = g.conv2d("expand", y, Conv2dAttrs::square(width, channels, 1));
  y = g.batch_norm("bn3", y, channels);
  y = g.add("residual", y, x);
  g.activation("act3", y, ActKind::kReLU);
  g.validate();
  return g;
}

}  // namespace

int main() {
  constexpr std::int64_t kChannels = 256;
  constexpr std::int64_t kSpatial = 14;  // stage-3 feature map of a 224 net
  constexpr double kBatch = 64.0;

  std::cout << "NAS block search: ranking candidate residual cells for a "
            << kChannels << "-channel, " << kSpatial << "x" << kSpatial
            << " stage (batch " << kBatch << ")\n\n";

  // Tune a block-level predictor on the paper's nine reference blocks.
  SimInferenceBackend sim(a100_80gb());
  std::vector<BlockCase> reference;
  for (const auto& nb : models::paper_blocks()) {
    models::BlockExtraction ex = models::extract_paper_block(nb);
    reference.push_back(
        {nb.label, std::move(ex.block), std::move(ex.input_shape)});
  }
  const auto samples =
      run_block_campaign(sim, reference, {1, 8, 32, 128, 512}, 3, 0xa5);
  const ConvMeter predictor = ConvMeter::fit_inference(samples);
  std::cout << "predictor tuned on " << samples.size()
            << " reference-block measurements\n\n";

  // Enumerate the design space.
  std::vector<Candidate> candidates;
  const Shape input =
      Shape::nchw(1, kChannels, kSpatial, kSpatial);
  for (const std::int64_t width : {64, 128, 256}) {
    for (const std::int64_t kernel : {3, 5}) {
      for (const std::int64_t groups : {std::int64_t{1}, std::int64_t{32},
                                        width /* depthwise */}) {
        if (width % groups != 0) continue;
        std::ostringstream name;
        name << "w" << width << "-k" << kernel << "-g" << groups;
        Candidate c{name.str(),
                    make_candidate(kChannels, width, kernel, groups,
                                   name.str()),
                    {},
                    0.0};
        c.metrics = compute_metrics(c.graph, input);
        QueryPoint q;
        q.metrics_b1 = c.metrics;
        q.per_device_batch = kBatch;
        c.predicted_ms = predictor.predict_inference(q) * 1e3;
        candidates.push_back(std::move(c));
      }
    }
  }

  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) {
              return a.predicted_ms < b.predicted_ms;
            });

  ConsoleTable table(
      {"Candidate", "Pred. latency", "FLOPs", "Params", "Pareto"});
  double best_params = 1e300;
  for (const Candidate& c : candidates) {
    // Pareto: strictly fewer params than every faster candidate.
    const bool pareto = c.metrics.weights < best_params;
    best_params = std::min(best_params, c.metrics.weights);
    table.add_row({c.name, ConsoleTable::fmt(c.predicted_ms, 3) + " ms",
                   format_flops(c.metrics.flops),
                   format_count(c.metrics.weights), pareto ? "*" : ""});
  }
  table.print(std::cout);

  std::cout << "\n'*' marks the latency/parameter Pareto frontier. A NAS "
               "controller would explore around these cells; scoring all "
            << candidates.size()
            << " candidates took zero executions of the blocks "
               "themselves.\n";
  return 0;
}
