// Quickstart: the five-minute tour of ConvMeter.
//
//  1. build a ConvNet graph from the zoo,
//  2. extract its inherent metrics (FLOPs, Inputs, Outputs, Weights, Layers),
//  3. collect a small benchmark campaign on the simulated A100,
//  4. fit the performance model (one linear regression),
//  5. predict the inference time of a model the fit never saw,
//  6. do the same through the predictor registry and a JSON model file —
//     the seam a serving process would use.
#include <iostream>

#include "backend/sim_backend.hpp"
#include "collect/campaign.hpp"
#include "common/units.hpp"
#include "core/convmeter.hpp"
#include "metrics/metrics.hpp"
#include "models/zoo.hpp"
#include "predict/registry.hpp"

using namespace convmeter;

int main() {
  // -- 1. build a model ------------------------------------------------------
  const Graph resnet = models::build("resnet50");
  std::cout << "built " << resnet.name() << ": " << resnet.size()
            << " nodes, " << format_count(resnet.parameter_count())
            << " parameters\n";

  // -- 2. inherent metrics (no execution involved) ---------------------------
  const GraphMetrics m = compute_metrics_b1(resnet, 224);
  std::cout << "metrics @ 224px, batch 1: F = " << format_flops(m.flops)
            << ", I = " << format_count(m.conv_inputs)
            << " elems, O = " << format_count(m.conv_outputs)
            << " elems, W = " << format_count(m.weights) << ", L = "
            << m.layers << "\n";

  // -- 3. benchmark campaign on the simulated device -------------------------
  SimInferenceBackend device(a100_80gb());
  InferenceSweep sweep;
  sweep.models = {"alexnet",      "vgg16",           "resnet18",
                  "mobilenet_v2", "efficientnet_b0", "squeezenet1_0",
                  "densenet121",  "regnet_x_8gf"};
  sweep.image_sizes = {64, 128, 224};
  sweep.batch_sizes = {1, 16, 64, 256};
  const auto samples = run_inference_campaign(device, sweep);
  std::cout << "campaign: " << samples.size() << " measurements on "
            << device.device().name << "\n";

  // -- 4. fit ConvMeter (Eq. 2/3: four coefficients) --------------------------
  const ConvMeter model = ConvMeter::fit_inference(samples);
  std::cout << "fitted coefficients: " << model.forward_model().to_text()
            << "\n";

  // -- 5. predict an unseen model --------------------------------------------
  // resnet50 was NOT in the campaign above. Each prediction carries a
  // residual-based uncertainty band (+/- 2 sigma of the fit's relative
  // residuals).
  for (const double batch : {1.0, 16.0, 64.0, 256.0}) {
    QueryPoint q;
    q.metrics_b1 = m;
    q.per_device_batch = batch;
    const PredictionInterval p = model.predict_inference_interval(q);
    const double actual =
        device.simulator().expected(resnet, Shape::nchw(static_cast<std::int64_t>(batch),
                                            3, 224, 224));
    std::cout << "resnet50 batch " << batch << ": predicted "
              << format_seconds(p.value) << " [" << format_seconds(p.low)
              << " .. " << format_seconds(p.high) << "], simulator says "
              << format_seconds(actual) << "\n";
  }

  // -- 6. the same through the predictor registry ----------------------------
  // Every predictor family ("convmeter", "flops-only", "mlp", ...) sits
  // behind the polymorphic fit/predict interface and persists as a
  // versioned JSON model file; a serving process reloads it without
  // refitting.
  const PredictorOptions options;
  const auto predictor = make_predictor("convmeter-fwd-only", options);
  predictor->fit(samples);
  const std::string model_file = predictor->save_json();
  const auto reloaded = load_predictor_json(model_file, options);
  QueryPoint q;
  q.metrics_b1 = m;
  q.per_device_batch = 64.0;
  std::cout << "registry predictor '" << reloaded->name()
            << "' (reloaded from " << model_file.size()
            << "-byte JSON model file): resnet50 batch 64 -> "
            << format_seconds(reloaded->predict(q.as_sample())) << "\n";
  return 0;
}
